"""Chaos tests for the shard fabric: kill, wedge, and corrupt a node.

Same contract as :mod:`tests.test_executor_chaos`, one level up: each
test injects one node-level failure and asserts that the merged campaign
is still bit-identical to the 1-shard run *and* that every recovery
decision (worker restart, lease re-grant, lease expiry, corrupt store
entry) is visible in the merged schema-5 manifest.

The fault surfaces:

* ``repro.eval.parallel._CHAOS_HOOK`` fires inside the shard worker
  process (lease batches are small, so the node runs its tuples
  serially) — SIGKILLing or sleeping there takes down / wedges the whole
  *node* mid-lease, and recovery is the coordinator's supervisor, not
  the node's own;
* ``repro.shard.coordinator._SYNC_CHAOS_HOOK`` fires in the coordinator
  right before a completed lease's entries are read out of the
  shard-local store — corrupting an entry there exercises checksum
  detection plus the re-lease recovery round.
"""

import multiprocessing
import os
import signal
import time
from pathlib import Path
from unittest import mock

import pytest

from repro.apps import app_factory
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    run,
    stdapp_variant,
)
from repro.eval import parallel as par
from repro.faultinject import HEAP_ARRAY_RESIZE
from repro.shard import coordinator
from repro.shard.worker import shard_store_path

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the shard fabric requires the fork start method",
)

# mcf / heap-array-resize: 2 sites x 3 variants x 1 seed = 6 experiments.
KIND = HEAP_ARRAY_RESIZE
N_SITES = 2
N_VARIANTS = 3


def make_harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1), seeds=(0,))


def make_variants():
    return [stdapp_variant()] + diversity_variants("sds")[: N_VARIANTS - 1]


@pytest.fixture(scope="module")
def harness():
    return make_harness()


@pytest.fixture(scope="module")
def variants():
    return make_variants()


@pytest.fixture(scope="module")
def serial_baseline(harness, variants):
    """Signatures of the 1-shard run — the bit-identity reference."""
    res = run(harness, variants, kind=KIND, config=ExecConfig(shards=1))
    assert len(res.records) == N_SITES * N_VARIANTS
    return [r.signature() for r in res.records]


def run_sharded_chaos(harness, variants, hook, config):
    """Run a sharded campaign with the experiment-level chaos hook
    installed; forked shard workers inherit it."""
    with mock.patch.object(par, "_CHAOS_HOOK", hook):
        return run(harness, variants, kind=KIND, config=config)


def latch_once(latch_path):
    """True exactly once across every process sharing ``latch_path``."""
    try:
        os.close(os.open(str(latch_path), os.O_CREAT | os.O_EXCL))
        return True
    except FileExistsError:
        return False


class TestNodeDeath:
    def test_sigkill_mid_lease_relaeses_and_stays_identical(
        self, tmp_path, harness, variants, serial_baseline
    ):
        """A shard node SIGKILLed mid-lease: the coordinator's supervisor
        sees the pipe EOF, respawns the node, re-leases the batch."""
        latch = tmp_path / "sigkill.latch"

        def hook(item):
            if latch_once(latch):
                os.kill(os.getpid(), signal.SIGKILL)

        res = run_sharded_chaos(
            harness,
            variants,
            hook,
            ExecConfig(shards=2, retry_backoff_s=0.01),
        )
        assert [r.signature() for r in res.records] == serial_baseline
        m = res.manifest
        assert m.n_shards == 2
        assert m.worker_restarts >= 1
        assert m.lease_reassignments >= 1
        assert not m.quarantined

    def test_wedged_node_expires_its_lease(
        self, tmp_path, harness, variants, serial_baseline
    ):
        """A node wedged past ``lease_timeout_s`` is killed and its lease
        granted to a fresh node — the expiry shows in the manifest."""
        latch = tmp_path / "wedge.latch"

        def hook(item):
            if latch_once(latch):
                time.sleep(60)  # far past the lease budget; killed at ~2s

        res = run_sharded_chaos(
            harness,
            variants,
            hook,
            ExecConfig(shards=2, lease_timeout_s=2.0, retry_backoff_s=0.01),
        )
        assert [r.signature() for r in res.records] == serial_baseline
        m = res.manifest
        assert m.lease_expiries >= 1
        assert m.worker_restarts >= 1
        assert m.lease_reassignments >= 1
        assert not m.quarantined


class TestStoreCorruption:
    def test_corrupt_shard_entry_detected_and_re_leased(
        self, tmp_path, harness, variants, serial_baseline
    ):
        """One shard-local store entry corrupted just before sync: the
        checksum catches it, the tuple is re-leased in a recovery round,
        and the merged campaign is still bit-identical."""
        corrupted = []

        def corrupt_once(lease, wid, fabric_root):
            if corrupted:
                return
            root = Path(shard_store_path(fabric_root, wid))
            entries = sorted(root.rglob("*.json"))
            if entries:
                entries[0].write_text('{"checksum": "garbage"')
                corrupted.append(str(entries[0]))

        with mock.patch.object(coordinator, "_SYNC_CHAOS_HOOK", corrupt_once):
            res = run(
                harness,
                variants,
                kind=KIND,
                config=ExecConfig(shards=2, retry_backoff_s=0.01),
            )
        assert corrupted, "chaos hook never found an entry to corrupt"
        assert [r.signature() for r in res.records] == serial_baseline
        m = res.manifest
        assert m.store_corrupt >= 1
        assert m.lease_reassignments >= 1
        assert m.store_synced == len(res.records)
        assert not m.quarantined

    def test_persistent_corruption_quarantines_instead_of_hanging(
        self, harness, variants
    ):
        """If a tuple's synced result keeps vanishing, the recovery budget
        runs out and the site is quarantined — never an infinite loop."""
        target = []

        def corrupt_always(lease, wid, fabric_root):
            root = Path(shard_store_path(fabric_root, wid))
            entries = sorted(root.rglob("*.json"))
            if not entries:
                return
            if not target:
                target.append(entries[0].name)
            for entry in entries:
                if entry.name == target[0]:
                    entry.write_text("not json at all")

        with mock.patch.object(coordinator, "_SYNC_CHAOS_HOOK", corrupt_always):
            res = run(
                harness,
                variants,
                kind=KIND,
                config=ExecConfig(shards=2, retries=1, retry_backoff_s=0.01),
            )
        m = res.manifest
        assert m.quarantined
        assert any(
            "missing after re-lease rounds" in q.reason for q in m.quarantined
        )
        # Surviving records are still present, identical, and the merged
        # manifest accounts for every admitted tuple.
        assert len(res.records) < N_SITES * N_VARIANTS
        assert m.store_corrupt >= 1
