"""MDS transformation tests (Tables 4.1–4.4)."""

import pytest

from repro.core import DpmrCompiler
from repro.ir import (
    GlobalRef,
    INT32,
    INT64,
    ModuleBuilder,
    PointerType,
    VOID,
    verify_module,
)
from repro.ir import instructions as ins
from repro.machine import ExitStatus, run_process
from tests.conftest import build_linked_list_module


@pytest.fixture
def mds_build(linked_list_module):
    return DpmrCompiler(design="mds").compile(linked_list_module)


class TestSignatures:
    def test_create_node_params(self, mds_build):
        """Fig. 4.1: createNode(rvRopPtr, data, last, last_r) — no shadow."""
        fn = mds_build.module.functions["createNode"]
        assert [p.name for p in fn.params] == ["rvRopPtr", "data", "last", "last_r"]

    def test_get_sum_params(self, mds_build):
        fn = mds_build.module.functions["getSum"]
        assert [p.name for p in fn.params] == ["n", "n_r"]

    def test_no_shadow_allocations(self, mds_build):
        """MDS allocates exactly one extra object (the replica): app malloc +
        dpmr_replica_malloc, no shadow malloc."""
        fn = mds_build.module.functions["createNode"]
        mallocs = [i for i in fn.instructions() if isinstance(i, ins.Malloc)]
        assert len(mallocs) == 1
        replica_calls = [
            i
            for i in fn.instructions()
            if isinstance(i, ins.Call)
            and i.is_direct
            and i.callee == "dpmr_replica_malloc"
        ]
        assert len(replica_calls) == 1

    def test_module_verifies(self, mds_build):
        verify_module(mds_build.module)


class TestPointerLoadBehaviour:
    def test_pointer_loads_never_compared(self, mds_build):
        """Under MDS pointer loads yield ROPs; only non-pointer loads get
        detect calls.  getSum loads one int (compared) and one pointer (not),
        per loop iteration."""
        fn = mds_build.module.functions["getSum"]
        detects = [
            i
            for i in fn.instructions()
            if isinstance(i, ins.Call) and i.is_direct and i.callee == "dpmr_detect"
        ]
        loads = [i for i in fn.instructions() if isinstance(i, ins.Load)]
        ptr_loads = [l for l in loads if isinstance(l.result.type, PointerType)]
        # the pointer load count doubles (app + replica ROP load)
        assert ptr_loads
        # detect calls exist (for the int loads) but fewer than total loads
        assert 0 < len(detects) < len(loads)

    def test_replica_memory_mirrors(self, linked_list_module, mds_build):
        golden = run_process(linked_list_module)
        r = mds_build.run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text


class TestReplicaGlobals:
    def test_replica_global_pointer_redirected(self):
        """Table 4.3: replica memory holds replica pointers, so a replica
        global pointer initializer targets the replica global."""
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        target = mb.add_global("t", INT64, 9)
        mb.add_global("p", PointerType(INT64), target.ref())
        fn, b = mb.define("main", INT32)
        loaded = b.load(mb.module.globals["p"].ref())
        b.call("print_i64", [b.load(loaded)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        out = DpmrCompiler(design="mds").compile(mb.module).module
        init = out.globals["p_r"].initializer
        assert isinstance(init, GlobalRef) and init.name == "t_r"
        assert "p_s" not in out.globals

    def test_runs_with_redirected_globals(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        target = mb.add_global("t", INT64, 9)
        mb.add_global("p", PointerType(INT64), target.ref())
        fn, b = mb.define("main", INT32)
        loaded = b.load(mb.module.globals["p"].ref())
        b.call("print_i64", [b.load(loaded)])
        b.ret(b.i32(0))
        r = DpmrCompiler(design="mds").compile(mb.module).run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == "9"


class TestMemoryFootprint:
    def test_mds_uses_less_heap_than_sds(self, linked_list_module):
        """§4.1: SDS memory overhead is 2–4x, MDS is 2x — a pointer-bearing
        workload must allocate strictly less under MDS."""
        from repro.core import DpmrRuntime, ReplicationDesign
        from repro.machine.interpreter import Machine

        usage = {}
        for design in ("sds", "mds"):
            build = DpmrCompiler(design=design).compile(
                build_linked_list_module()
            )
            machine = Machine(build.module, dpmr_runtime=build.runtime())
            machine.run("main", [])
            usage[design] = machine.heap.top - machine.heap.base
        assert usage["mds"] < usage["sds"]

    def test_mds_cheaper_than_sds_on_pointer_workload(self, linked_list_module):
        sds = DpmrCompiler(design="sds").compile(build_linked_list_module()).run()
        mds = DpmrCompiler(design="mds").compile(build_linked_list_module()).run()
        assert mds.cycles < sds.cycles


class TestRestrictionRelaxation:
    def test_type_generic_pointer_arithmetic_allowed(self):
        """§4.4: MDS drops SDS's pointer-arithmetic typing restrictions —
        casting a struct pointer to a byte array and indexing it works."""
        from repro.ir import ArrayType, INT8, StructType

        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        s = StructType([INT64, INT64])
        fn, b = mb.define("main", INT32)
        p = b.malloc(s)
        b.store(b.field_addr(p, 1), b.i64(0x0807060504030201))
        raw = b.ptr_cast(p, ArrayType(INT8))
        byte = b.load(b.elem_addr(raw, b.i64(8)))
        b.call("print_i64", [b.num_cast(byte, INT64)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        golden = run_process(mb.module)
        r = DpmrCompiler(design="mds").compile(mb.module).run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text == "1"
