"""Correctness of the incremental recompilation layer (core/incremental.py).

The function-level transform cache must be *invisible*: a campaign built
through ``IncrementalDpmrCompiler`` must produce byte-identical
``ExperimentRecord``s — and therefore identical coverage/latency metrics —
to one that rebuilds and re-transforms every module from scratch, across
both fault kinds, all diversity variants, and the stateful (static RNG)
comparison policies.  These tests pin that guarantee plus the cache
accounting (hit/miss counters) and the cache-key invalidation behaviour.
"""

import pytest

from repro.apps import app_factory
from repro.core import DpmrCompiler, IncrementalDpmrCompiler, static_50, temporal_1_2
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    coverage_components,
    diversity_variants,
    mean_time_to_detection,
    policy_variants,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.faultinject.campaign import Campaign
from repro.faultinject.injector import inject
from repro.ir.printer import format_module

from .test_parallel_determinism import record_signature


@pytest.fixture(scope="module")
def harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1), seeds=(0, 1))


class TestRecordIdentity:
    @pytest.mark.parametrize("kind", [HEAP_ARRAY_RESIZE, IMMEDIATE_FREE])
    def test_all_diversity_variants_byte_identical(self, harness, kind):
        variants = [stdapp_variant()] + diversity_variants("sds")
        full = harness.run_campaign(variants, kind, config=ExecConfig(incremental=False))
        inc = harness.run_campaign(variants, kind, config=ExecConfig(incremental=True))
        assert len(full) == len(inc) > 0
        assert [record_signature(r) for r in full] == [
            record_signature(r) for r in inc
        ]

    def test_stateful_policy_variants_byte_identical(self, harness):
        # static-N draws one RNG number per load site in module order; the
        # incremental path must replay the exact per-function RNG state.
        variants = policy_variants("sds")
        full = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(incremental=False)
        )
        inc = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(incremental=True)
        )
        assert [record_signature(r) for r in full] == [
            record_signature(r) for r in inc
        ]

    def test_metrics_identical(self, harness):
        variants = [stdapp_variant()] + diversity_variants("sds")
        full = harness.run_campaign(
            variants, IMMEDIATE_FREE, config=ExecConfig(incremental=False)
        )
        inc = harness.run_campaign(variants, IMMEDIATE_FREE, config=ExecConfig(incremental=True))
        for name in {v.name for v in variants}:
            f = [r for r in full if r.variant == name]
            i = [r for r in inc if r.variant == name]
            assert coverage_components(f) == coverage_components(i)
            assert mean_time_to_detection(f) == mean_time_to_detection(i)

    @pytest.mark.parametrize("design", ["sds", "mds"])
    def test_transformed_module_text_identical(self, design):
        camp = Campaign(app_factory("equake", 1), IMMEDIATE_FREE)
        for variant in diversity_variants(design)[:3]:
            incremental = variant.incremental_compiler(camp.pristine)
            for site in camp.sites:
                full = variant.compile(inject(app_factory("equake", 1)(), site, 50))
                fast = variant.compile_incremental(
                    incremental, camp.faulty_module(site)
                )
                assert format_module(full._build.module) == format_module(
                    fast._build.module
                )


class TestCacheAccounting:
    def test_hit_and_miss_counters(self):
        camp = Campaign(app_factory("mcf", 1), HEAP_ARRAY_RESIZE)
        variant = diversity_variants("sds")[0]
        incremental = variant.incremental_compiler(camp.pristine)
        site = camp.sites[0]

        build = incremental.compile(camp.faulty_module(site))
        # mcf defines addArc (unchanged → hit) and main (injected → miss).
        assert build.cache_misses == 1
        assert build.cache_hits >= 1
        assert incremental.stats.hits == build.cache_hits
        assert incremental.stats.misses == 1
        assert 0 < incremental.stats.hit_rate < 1

        # Same fault again: the content-addressed memo turns the one changed
        # function into a hit as well.
        again = incremental.compile(camp.faulty_module(site))
        assert again.cache_misses == 0
        assert again.cache_hits == build.cache_hits + build.cache_misses

    def test_unchanged_module_is_all_hits(self):
        camp = Campaign(app_factory("mcf", 1), HEAP_ARRAY_RESIZE)
        variant = diversity_variants("sds")[0]
        incremental = variant.incremental_compiler(camp.pristine)
        build = incremental.compile(camp.pristine_module())
        assert build.cache_misses == 0
        assert build.cache_hits >= 2
        assert format_module(build.module) == format_module(
            variant.compile(app_factory("mcf", 1)())._build.module
        )

    def test_plain_compile_reports_zero_counters(self):
        build = DpmrCompiler().compile(app_factory("art", 1)())
        assert build.cache_hits == 0 and build.cache_misses == 0


class TestCacheInvalidation:
    def test_content_change_forces_retransform(self):
        # Two different faults in the same function have different content
        # hashes: each must be translated (miss), not served from the memo.
        camp = Campaign(app_factory("bzip2", 1), HEAP_ARRAY_RESIZE)
        assert len(camp.sites) >= 2
        variant = diversity_variants("sds")[0]
        incremental = variant.incremental_compiler(camp.pristine)
        a = incremental.compile(camp.faulty_module(camp.sites[0]))
        b = incremental.compile(camp.faulty_module(camp.sites[1]))
        assert a.cache_misses == 1 and b.cache_misses == 1
        assert format_module(a.module) != format_module(b.module)

    def test_structural_change_rejected_to_full_rebuild(self):
        # A module whose function set does not match the pristine snapshot
        # cannot be spliced; the compiler falls back to a full rebuild.
        pristine = app_factory("art", 1)()
        other = app_factory("bzip2", 1)()
        compiler = DpmrCompiler()
        incremental = IncrementalDpmrCompiler(compiler, pristine)
        build = incremental.compile(other)
        assert incremental.stats.full_rebuilds == 1
        assert format_module(build.module) == format_module(
            compiler.compile(app_factory("bzip2", 1)()).module
        )

    def test_unsupported_configurations_rejected(self):
        pristine = app_factory("art", 1)()
        with pytest.raises(ValueError):
            IncrementalDpmrCompiler(DpmrCompiler(optimize=True), pristine)


class TestExecutorIntegration:
    def test_campaign_default_path_is_incremental(self, harness, monkeypatch):
        # DPMR_INCREMENTAL=0 opts out; default (unset) opts in — and both
        # produce the same records.
        monkeypatch.delenv("DPMR_INCREMENTAL", raising=False)
        variants = [stdapp_variant()] + diversity_variants("sds")[:2]
        default = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig.from_env()
        )
        monkeypatch.setenv("DPMR_INCREMENTAL", "0")
        optout = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig.from_env()
        )
        assert [record_signature(r) for r in default] == [
            record_signature(r) for r in optout
        ]

    def test_policy_identity_with_temporal_and_static(self, harness):
        variants = [
            stdapp_variant(),
            policy_variants("sds")[0],
        ]
        variants[1].policy = static_50()
        full = harness.run_campaign(
            variants, IMMEDIATE_FREE, config=ExecConfig(incremental=False)
        )
        inc = harness.run_campaign(variants, IMMEDIATE_FREE, config=ExecConfig(incremental=True))
        assert [record_signature(r) for r in full] == [
            record_signature(r) for r in inc
        ]
        variants[1].policy = temporal_1_2()
        full = harness.run_campaign(
            variants, IMMEDIATE_FREE, config=ExecConfig(incremental=False)
        )
        inc = harness.run_campaign(variants, IMMEDIATE_FREE, config=ExecConfig(incremental=True))
        assert [record_signature(r) for r in full] == [
            record_signature(r) for r in inc
        ]
