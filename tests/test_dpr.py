"""DPR race-condition tests (§1.2, Fig. 1.2)."""

import pytest

from repro.dpr import (
    Bank,
    DiverseSchedulePolicy,
    OVERDRAFT_PENALTY,
    Request,
    SchedulePolicy,
    WorkerPool,
    paper_scenario,
    run_with_dpr,
)


class TestBank:
    def test_deposit_then_withdraw(self):
        bank = Bank({"a": 100})
        bank.commit(Request(0, "deposit", "a", 200))
        bank.commit(Request(1, "withdraw", "a", 250))
        assert bank.balances["a"] == 50
        assert bank.penalties == 0

    def test_overdraft_penalty(self):
        bank = Bank({"a": 100})
        bank.commit(Request(0, "withdraw", "a", 250))
        assert bank.balances["a"] == 100 - 250 - OVERDRAFT_PENALTY
        assert bank.penalties == 1


class TestWorkerPool:
    def test_fifo_single_worker_commits_in_order(self):
        pool = WorkerPool(1)
        order = pool.run(
            [Request(i, "balance", f"acct{i}") for i in range(5)],
            lambda r: None,
        )
        assert order == [0, 1, 2, 3, 4]

    def test_per_account_ordering_enforced(self):
        """With ordering on, same-account requests commit in arrival order
        even when service times would invert them."""
        pool = WorkerPool(2, per_account_ordering=True)
        order = pool.run(paper_scenario(), lambda r: None)
        assert order == [0, 1]

    def test_racy_pool_commits_out_of_order(self):
        """Fig. 1.2(a): without per-account ordering the fast withdrawal
        completes before the slow deposit."""
        pool = WorkerPool(2, per_account_ordering=False)
        order = pool.run(paper_scenario(), lambda r: None)
        assert order == [1, 0]

    def test_all_requests_commit_exactly_once(self):
        reqs = [Request(i, "deposit", f"a{i % 3}", 10) for i in range(12)]
        commits = []
        WorkerPool(3, per_account_ordering=False).run(reqs, commits.append)
        assert sorted(r.seq for r in commits) == list(range(12))


class TestDprDetection:
    def test_paper_scenario_faulty_balance(self):
        """Fig. 1.2(a): $100 + deposit $200 / withdraw $250 processed out of
        order → overdraft penalty → $35 instead of $50."""
        outcome = run_with_dpr(paper_scenario(), {"alice": 100}, racy=True)
        assert outcome.original_balances == {"alice": 35}

    def test_race_detected_by_diverse_replica(self):
        outcome = run_with_dpr(paper_scenario(), {"alice": 100}, racy=True)
        assert outcome.detected
        assert outcome.divergent_accounts == ["alice"]
        assert outcome.replica_balances == {"alice": 50}

    def test_correct_implementation_never_detected(self):
        outcome = run_with_dpr(paper_scenario(), {"alice": 100}, racy=False)
        assert not outcome.detected
        assert outcome.original_balances == {"alice": 50}

    def test_error_free_execution_schedule_invariant(self):
        """The DPR requirement: diversity must not cause divergence under
        error-free execution — across several diverse policies."""
        reqs = [
            Request(0, "deposit", "a", 50),
            Request(1, "withdraw", "a", 30),
            Request(2, "deposit", "b", 10),
            Request(3, "withdraw", "b", 40),
            Request(4, "deposit", "a", 5),
        ]
        for salt in (3, 7, 13):
            outcome = run_with_dpr(
                reqs,
                {"a": 0, "b": 0},
                racy=False,
                diverse_policy=DiverseSchedulePolicy(salt),
            )
            assert not outcome.detected, salt

    def test_commit_orders_recorded(self):
        outcome = run_with_dpr(paper_scenario(), {"alice": 100}, racy=True)
        assert outcome.original_commit_order == [1, 0]
        assert outcome.replica_commit_order == [0, 1]

    def test_multi_account_race(self):
        reqs = [
            Request(0, "deposit", "x", 100),
            Request(1, "withdraw", "x", 120),
            Request(2, "deposit", "y", 500),
            Request(3, "withdraw", "y", 200),
        ]
        outcome = run_with_dpr(reqs, {"x": 50, "y": 0}, racy=True)
        # x races (deposit slower than withdrawal); detection must fire.
        assert outcome.detected
