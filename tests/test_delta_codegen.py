"""Delta codegen, the persistent code cache, and the campaign hot path.

PR 7 made the compiled tier the default campaign engine.  The machinery
that makes that profitable has three layers, each pinned here:

* **delta codegen** (machine/codegen.py) — per-site code regenerates only
  the leader chains the fault transform touched; untouched chains' chunk
  objects (including their ``lines`` tuples) must be reused *by identity*,
  and the spliced source must equal a from-scratch generation byte for
  byte;
* **persistent code cache** (machine/compile.py) — generated source
  round-trips through the ``DPMR_STORE`` layout (``<store>/codegen/``)
  with a sha256 integrity header; corruption is detected, deleted, and
  regenerated, never executed;
* **campaign hot path** — compiled-by-default interplay with the result
  store (``compiled`` is excluded from the exec fingerprint, so a cold
  interpreter run resumes warm under the compiled default bit-identically),
  the single-core serial fallback, and the per-run segment buffer reuse
  that eliminated the dominant fixed cost of an experiment.
"""

import os

import pytest

from repro.apps import app_factory
from repro.eval.api import run
from repro.eval.config import ExecConfig
from repro.eval.experiment import WorkloadHarness
from repro.eval.variants import Variant, diversity_variants
from repro.faultinject.injector import (
    HEAP_ARRAY_RESIZE,
    IMMEDIATE_FREE,
    enumerate_sites,
    inject,
)
from repro.machine import compile as C
from repro.machine import memory as M
from repro.machine.codegen import (
    ProgramContext,
    complete_function_delta,
    generate_function,
    plan_function_delta,
    sanitize,
)
from repro.machine.interpreter import (
    FUNC_ADDR_BASE,
    FUNC_ADDR_STRIDE,
    compute_global_layout,
)
from repro.machine.memory import DEFAULT_GLOBALS_SIZE, GLOBALS_BASE, Segment


def _ctx_for(module) -> ProgramContext:
    """The exact context CompiledProgram builds (same folds, same names)."""
    layout = compute_global_layout(
        module, GLOBALS_BASE, GLOBALS_BASE + DEFAULT_GLOBALS_SIZE
    )
    func_addrs = {
        name: FUNC_ADDR_BASE + i * FUNC_ADDR_STRIDE
        for i, name in enumerate(module.functions)
    }
    fn_info = {
        name: (f"_f{i}_{sanitize(name)[:40]}", len(fn.params), fn.is_external)
        for i, (name, fn) in enumerate(module.functions.items())
    }
    return ProgramContext(layout, func_addrs, fn_info)


# -- delta codegen: identity reuse of untouched chains -------------------


@pytest.mark.parametrize("kind", [HEAP_ARRAY_RESIZE, IMMEDIATE_FREE])
def test_delta_reuses_untouched_chains_by_identity(kind):
    """A fault-injected function's regeneration must reuse every untouched
    chain's chunk — and its ``lines`` tuple — *by object identity* (not
    equality: identity proves no string work happened), re-emitting only
    the chains the injector touched, while assembling source byte-equal
    to a from-scratch generation of the faulty function."""
    pristine = app_factory("mcf", 1)()
    ctx = _ctx_for(pristine)
    exercised = 0
    for site in enumerate_sites(pristine, kind):
        pyname = ctx.fn_info[site.function][0]
        try:
            base = generate_function(
                pristine.functions[site.function], ctx, pyname
            )
        except Exception:
            continue  # uncompilable function: the shim path covers it
        faulty = inject(
            pristine.clone(mutable_functions=(site.function,)), site
        )
        fn = faulty.functions[site.function]
        plan = plan_function_delta(fn, ctx, pyname, base)
        assert plan is not None, site.site_id
        assert plan.changed, site.site_id  # the injected chain did change
        gen = complete_function_delta(plan, base)
        assert set(gen.reused_leaders) == set(plan.reused)
        for label in gen.reused_leaders:
            assert gen.chunks[label] is base.chunks[label]
            assert gen.chunks[label].lines is base.chunks[label].lines
        changed_labels = set(base.leader_labels) - set(gen.reused_leaders)
        assert changed_labels
        for label in changed_labels:
            assert gen.chunks[label] is not base.chunks.get(label)
        # The spliced source is indistinguishable from a full generation.
        full = generate_function(fn, ctx, pyname)
        assert gen.source == full.source
        assert gen.src_sha == full.src_sha
        if gen.reused_leaders:
            exercised += 1
    # At least one site must have actually exercised chain reuse, or the
    # delta tier is vacuous for this workload.
    assert exercised > 0


def test_delta_plan_refuses_reshaped_function():
    # A function whose chain structure diverged (different leaders) must
    # fall back to full generation, not produce a bogus splice.
    module = app_factory("mcf", 1)()
    ctx = _ctx_for(module)
    names = [
        n for n, fn in module.functions.items() if not fn.is_external
    ]
    a, b = names[0], names[1]
    ga = generate_function(module.functions[a], ctx, ctx.fn_info[a][0])
    assert (
        plan_function_delta(module.functions[b], ctx, ctx.fn_info[a][0], ga)
        is None
    )


# -- persistent code cache -----------------------------------------------


def test_persistent_cache_roundtrip_and_corruption(tmp_path):
    prev = C.set_persistent_code_cache(str(tmp_path))
    try:
        key = "ab" * 32
        src = "def f():\n    return 41 + 1\n"
        C._persist_write(key, src)
        path = C._persist_path(key)
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as fh:
            assert fh.readline().startswith("# sha256:")
        assert C._persist_read(key) == src
        # Tampering breaks the integrity header: the entry is deleted and
        # reported as a miss, never returned.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("# tampered\n")
        assert C._persist_read(key) is None
        assert not os.path.exists(path)
        # A deleted entry is simply a miss (regeneration handles it).
        assert C._persist_read(key) is None
    finally:
        C.set_persistent_code_cache(prev)


def test_persistent_cache_disabled_by_default():
    # Outside a store-backed campaign no directory is configured, so
    # nothing is ever written to disk behind the caller's back.
    prev = C.set_persistent_code_cache(None)
    try:
        assert C.persistent_code_cache_dir() is None
    finally:
        C.set_persistent_code_cache(prev)


def test_campaign_store_populates_and_serves_code_cache(tmp_path):
    """A store-backed compiled campaign persists generated source under
    ``<store>/codegen/``; with the in-process caches dropped (a "new
    process"), recomputing the same campaign serves per-site code from
    disk (``persistent_hits``) and stays signature-identical."""
    store = tmp_path / "s"

    def campaign():
        harness = WorkloadHarness("mcf", app_factory("mcf", 1))
        return run(
            harness,
            diversity_variants("sds")[:2],
            kind=HEAP_ARRAY_RESIZE,
            config=ExecConfig(jobs=1, store_path=str(store)),
            max_sites=2,
        )

    # Other tests run identical campaigns; a warm in-process delta cache
    # would satisfy every per-site compile without ever touching disk.
    C.reset_codegen_caches()
    cold = campaign()
    assert len(cold.records) > 0
    codegen_dir = store / "codegen"
    entries = sorted(codegen_dir.rglob("*.py"))
    assert entries, "compiled campaign wrote no persistent code entries"
    for path in entries:
        text = path.read_text(encoding="utf-8")
        assert text.startswith("# sha256:")
    # The executor restores the previous persist dir on exit.
    assert C.persistent_code_cache_dir() is None
    # Simulate a fresh process: drop delta bases, delta cache, and the
    # content-addressed code cache, and invalidate stored *results* so the
    # runs actually re-execute (the result store would otherwise satisfy
    # everything without compiling at all).
    C.reset_codegen_caches()
    C._CODE_CACHE.clear()
    for sub in store.iterdir():
        if sub.is_dir() and sub.name != "codegen":
            for entry in sub.iterdir():
                entry.unlink()
    before = C.codegen_stats()
    warm = campaign()
    after = C.codegen_stats()
    assert after["persistent_hits"] > before["persistent_hits"]
    assert [r.signature() for r in warm.records] == [
        r.signature() for r in cold.records
    ]


def test_store_resume_cold_interp_warm_compiled_default(tmp_path):
    """``compiled`` is excluded from the store exec fingerprint, so a store
    written by an interpreter campaign must satisfy a compiled-default
    resume entirely from cache — and the records stay bit-identical."""
    store = tmp_path / "s"
    variants = [Variant(name="sds", design="sds")]

    def campaign(**cfg):
        harness = WorkloadHarness("mcf", app_factory("mcf", 1))
        return run(
            harness,
            variants,
            kind=IMMEDIATE_FREE,
            config=ExecConfig(jobs=1, store_path=str(store), **cfg),
            max_sites=3,
        )

    cold = campaign(compiled=False)
    assert cold.manifest.engine == "interp"
    assert cold.manifest.store_misses == len(cold.records) > 0
    warm = campaign()  # compiled-by-default resume
    assert warm.manifest.store_hits == len(cold.records)
    assert warm.manifest.store_misses == 0
    assert [r.signature() for r in warm.records] == [
        r.signature() for r in cold.records
    ]


# -- campaign hot path: memory reuse -------------------------------------


def test_garbage_segment_bytes_match_template_on_both_paths(monkeypatch):
    size = 3 * 4096  # distinctive size: avoids the pool other tests use
    seed = 0xD19E5
    template = M._garbage_bytes(seed ^ M.HEAP_BASE, size)
    cow = Segment("heap", M.HEAP_BASE, size, fill_seed=seed)
    assert bytes(cow.data) == template
    monkeypatch.setattr(M, "_COW_GARBAGE", False)
    plain = Segment("heap", M.HEAP_BASE, size, fill_seed=seed)
    assert bytes(plain.data) == template
    # Both are writable without disturbing the shared template.
    cow.data[0:4] = b"ABCD"
    plain.data[0:4] = b"ABCD"
    assert template[:4] == M._garbage_bytes(seed ^ M.HEAP_BASE, size)[:4]
    cow.release()
    plain.release()


def test_released_segment_buffer_is_pooled_and_inaccessible(monkeypatch):
    monkeypatch.setattr(M, "_COW_GARBAGE", False)
    size = 5 * 4096
    seg = Segment("stack", M.STACK_BASE, size, fill_seed=1234)
    buf = seg.data
    seg.release()
    with pytest.raises(IndexError):
        seg.data[0]  # post-release access must fail loudly, not alias
    reused = Segment("stack", M.STACK_BASE, size, fill_seed=1234)
    assert reused.data is buf  # same buffer object back from the pool
    assert bytes(reused.data) == M._garbage_bytes(1234 ^ M.STACK_BASE, size)
    reused.release()


def test_cow_release_unmaps_before_gc():
    size = 2 * 4096
    if not M._COW_GARBAGE:  # pragma: no cover - non-Linux fallback
        pytest.skip("memfd_create unavailable")
    seg = Segment("heap", M.HEAP_BASE, size, fill_seed=99)
    mapping = seg.data
    seg.release()
    assert mapping.closed
    with pytest.raises(IndexError):
        seg.data[0]


# -- campaign hot path: worker decision ----------------------------------


def test_single_core_machine_forces_serial_with_reason(monkeypatch):
    from repro.eval import parallel as P

    monkeypatch.setattr(P.os, "cpu_count", lambda: 1)
    effective, reason, fallback = P._worker_decision(8, 1000)
    assert effective == 1
    assert reason == "serial"
    assert fallback == "single-core machine (os.cpu_count() <= 1)"


def test_multi_core_machine_still_parallelizes(monkeypatch):
    from repro.eval import parallel as P

    monkeypatch.setattr(P.os, "cpu_count", lambda: 8)
    if not P._fork_available():  # pragma: no cover - non-fork platforms
        pytest.skip("fork unavailable")
    effective, reason, fallback = P._worker_decision(4, 1000)
    assert effective == 4
    assert fallback is None
