"""Determinism of the parallel campaign executor (eval/parallel.py).

A campaign run with ``DPMR_JOBS=4`` must be *byte-identical* to the serial
run: same records in the same order, and therefore identical
coverage/conditional-coverage/latency metrics.  This is the executor's core
guarantee — per-experiment RNG seeding and no shared mutable machine state —
so the whole evaluation can fan out without changing a single number.
"""

import os
from unittest import mock

import pytest

from repro.apps import app_factory
from repro.eval import (
    ExecConfig,
    WorkloadHarness,
    coverage_components,
    default_jobs,
    diversity_variants,
    effective_workers,
    job_for_harness,
    mean_time_to_detection,
    prepare_build_states,
    run_campaign_jobs,
    stdapp_variant,
)
from repro.eval.parallel import MIN_ITEMS_PER_WORKER
from repro.faultinject import HEAP_ARRAY_RESIZE


def record_signature(r):
    """Every measured field of one experiment, as a comparable value."""
    return (
        r.workload,
        r.variant,
        r.site,
        r.run,
        r.golden_output,
        r.result.status,
        r.result.exit_code,
        r.result.output_text,
        r.result.cycles,
        r.result.instructions,
        tuple(sorted(r.result.fault_activations.items())),
        r.result.detail,
    )


@pytest.fixture(scope="module")
def harness():
    # Two seeds so per-experiment seeding (not just per-site) is exercised.
    return WorkloadHarness("mcf", app_factory("mcf", 1), seeds=(0, 1))


@pytest.fixture(scope="module")
def variants():
    # stdapp + all seven diversity variants; includes rearrange-heap, whose
    # dummy-allocation count comes from the per-machine RNG.
    return [stdapp_variant()] + diversity_variants("sds")


class TestParallelDeterminism:
    def test_parallel_records_byte_identical_to_serial(self, harness, variants):
        serial = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=1)
        )
        parallel = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=4)
        )
        assert len(serial) == len(parallel) > 0
        assert [record_signature(r) for r in serial] == [
            record_signature(r) for r in parallel
        ]

    def test_parallel_metrics_identical_to_serial(self, harness, variants):
        serial = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=1)
        )
        parallel = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=4)
        )
        for name in {v.name for v in variants}:
            s_recs = [r for r in serial if r.variant == name]
            p_recs = [r for r in parallel if r.variant == name]
            assert coverage_components(s_recs) == coverage_components(p_recs)
            assert mean_time_to_detection(s_recs) == mean_time_to_detection(p_recs)

    def test_multi_job_aggregation_matches_concatenated_serial(self, variants):
        """Cross-workload fan-out preserves the per-app serial ordering."""
        apps = ("mcf", "equake")
        harnesses = [WorkloadHarness(a, app_factory(a, 1)) for a in apps]
        few = variants[:3]
        jobs = [job_for_harness(h, few, HEAP_ARRAY_RESIZE) for h in harnesses]
        combined = run_campaign_jobs(jobs, config=ExecConfig(jobs=4))
        expected = []
        for h in harnesses:
            expected.extend(
                h.run_campaign(few, HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=1))
            )
        assert [record_signature(r) for r in combined] == [
            record_signature(r) for r in expected
        ]


class TestJobsEnvVar:
    def test_default_is_serial(self):
        with mock.patch.dict(os.environ):
            os.environ.pop("DPMR_JOBS", None)
            assert default_jobs() == 1

    def test_env_opt_in(self):
        with mock.patch.dict(os.environ, {"DPMR_JOBS": "4"}):
            assert default_jobs() == 4

    def test_garbage_rejected(self):
        with mock.patch.dict(os.environ, {"DPMR_JOBS": "many"}):
            with pytest.raises(ValueError):
                default_jobs()


class TestEffectiveWorkers:
    """The minimum-work-per-worker heuristic (small-campaign fork cost)."""

    def test_small_campaign_falls_back_to_serial(self):
        # Fewer items than one worker's minimum share: fork cost cannot
        # amortize, whatever DPMR_JOBS says.
        assert effective_workers(MIN_ITEMS_PER_WORKER - 1, 4) == 1
        assert effective_workers(0, 8) == 1

    def test_workers_scale_with_available_work(self):
        with mock.patch("os.cpu_count", return_value=8):
            assert effective_workers(MIN_ITEMS_PER_WORKER * 2, 4) == 2
            assert effective_workers(MIN_ITEMS_PER_WORKER * 4, 4) == 4
            assert effective_workers(MIN_ITEMS_PER_WORKER * 100, 4) == 4

    def test_workers_capped_by_cpu_count(self):
        with mock.patch("os.cpu_count", return_value=2):
            assert effective_workers(MIN_ITEMS_PER_WORKER * 100, 8) == 2

    def test_fork_path_still_byte_identical_when_forced(self, harness, variants):
        # On small/1-core machines the heuristic would serialize; pretend the
        # machine is big enough that the fork pool genuinely engages, and
        # check the executor's core guarantee end to end.
        serial = harness.run_campaign(
            variants, HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=1)
        )
        with mock.patch("os.cpu_count", return_value=4):
            job = job_for_harness(harness, variants, HEAP_ARRAY_RESIZE)
            parallel = run_campaign_jobs([job], config=ExecConfig(jobs=2))
        assert [record_signature(r) for r in serial] == [
            record_signature(r) for r in parallel
        ]


class TestIncrementalThroughExecutor:
    def test_incremental_and_full_rebuild_identical_via_executor(
        self, harness, variants
    ):
        job = job_for_harness(harness, variants, HEAP_ARRAY_RESIZE)
        full = run_campaign_jobs([job], config=ExecConfig(incremental=False))
        inc = run_campaign_jobs([job], config=ExecConfig(incremental=True))
        assert [record_signature(r) for r in full] == [
            record_signature(r) for r in inc
        ]

    def test_prebuilt_states_reused_and_counted(self, harness, variants):
        job = job_for_harness(harness, variants, HEAP_ARRAY_RESIZE)
        states = prepare_build_states([job])
        run_campaign_jobs([job], build_states=states, config=ExecConfig())
        compilers = [c for c in states[0].compilers if c is not None]
        assert compilers and all(c.stats.hits > 0 for c in compilers)
        assert all(c.stats.full_rebuilds == 0 for c in compilers)

    def test_forked_workers_share_coordinator_cache(self, harness, variants):
        # Workers inherit the coordinator's pristine snapshot and per-variant
        # transform caches via fork; records must stay byte-identical.
        job = job_for_harness(harness, variants, HEAP_ARRAY_RESIZE)
        serial = run_campaign_jobs([job], config=ExecConfig(jobs=1))
        with mock.patch("os.cpu_count", return_value=4):
            parallel = run_campaign_jobs([job], config=ExecConfig(jobs=2))
        assert [record_signature(r) for r in serial] == [
            record_signature(r) for r in parallel
        ]
