"""Integration tests: full campaigns reproducing the paper's key findings
at test scale (single app, single seed)."""

import pytest

from repro.apps import app_factory
from repro.eval import (
    WorkloadHarness,
    by_variant,
    conditional_coverage_components,
    coverage,
    coverage_components,
    diversity_variants,
    mean_time_to_detection,
    policy_variants,
    std_not_all_det_sites,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.machine import ExitStatus


@pytest.fixture(scope="module")
def mcf_harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1))


@pytest.fixture(scope="module")
def art_harness():
    return WorkloadHarness("art", app_factory("art", 1))


class TestResizeCoverage:
    def test_implicit_diversity_covers_heap_array_resizes(self, art_harness):
        """§3.7 key finding: buffer overflows from heap array resizes are
        entirely covered by implicit diversity (the no-diversity variant)."""
        no_div = diversity_variants("sds")[0]
        records = art_harness.run_campaign([no_div], HEAP_ARRAY_RESIZE)
        assert coverage(records) == 1.0

    def test_dpmr_beats_stdapp_on_resizes(self, art_harness):
        variants = [stdapp_variant(), diversity_variants("sds")[2]]
        records = by_variant(
            art_harness.run_campaign(variants, HEAP_ARRAY_RESIZE)
        )
        assert coverage(records["rearrange-heap"]) >= coverage(records["stdapp"])


class TestImmediateFreeCoverage:
    def test_rearrange_heap_covers_immediate_frees(self, mcf_harness):
        """§3.7: rearrange-heap is the strongest variant against dangling
        pointers from immediate frees."""
        rearrange = diversity_variants("sds")[2]
        records = mcf_harness.run_campaign([rearrange], IMMEDIATE_FREE)
        assert coverage(records) == 1.0

    def test_coverage_breakdown_sums_to_one_or_less(self, mcf_harness):
        v = diversity_variants("sds")[0]
        c = coverage_components(mcf_harness.run_campaign([v], IMMEDIATE_FREE))
        assert 0.0 <= c.coverage <= 1.0


class TestConditionalCoverage:
    def test_conditional_coverage_pipeline(self, mcf_harness):
        """Runs the Figs. 3.8/3.9 pipeline: stdapp records define the
        StdNotAllDet sites; DPMR variants are conditioned on them."""
        variants = [stdapp_variant(), diversity_variants("sds")[2]]
        records = by_variant(mcf_harness.run_campaign(variants, IMMEDIATE_FREE))
        qualifying = std_not_all_det_sites(records["stdapp"])
        if qualifying:
            cc = conditional_coverage_components(
                records["rearrange-heap"], qualifying
            )
            assert cc.total_runs >= 1
            assert cc.coverage >= 0.5


class TestLatency:
    def test_detection_latency_measured(self, art_harness):
        v = diversity_variants("sds")[2]
        records = art_harness.run_campaign([v], IMMEDIATE_FREE)
        latency = mean_time_to_detection(records)
        detected = [r for r in records if r.ddet or (r.ndet and not r.co)]
        if detected:
            assert latency is not None and latency >= 0


class TestPolicyCampaign:
    def test_policy_variants_run_under_faults(self, art_harness):
        pv = [v for v in policy_variants("sds") if v.name in ("all-loads", "static-90%")]
        records = by_variant(art_harness.run_campaign(pv, HEAP_ARRAY_RESIZE))
        for name, recs in records.items():
            assert coverage(recs) >= 0.5, name


class TestMdsCampaign:
    def test_mds_resize_coverage_matches_sds_shape(self, art_harness):
        sds = diversity_variants("sds")[0]
        mds = diversity_variants("mds")[0]
        sds_cov = coverage(art_harness.run_campaign([sds], HEAP_ARRAY_RESIZE))
        mds_cov = coverage(art_harness.run_campaign([mds], HEAP_ARRAY_RESIZE))
        assert mds_cov == pytest.approx(sds_cov, abs=0.35)

    def test_mds_overhead_not_greater_than_sds(self, mcf_harness):
        sds = mcf_harness.overhead(diversity_variants("sds")[0])
        mds = mcf_harness.overhead(diversity_variants("mds")[0])
        assert mds <= sds + 0.05
