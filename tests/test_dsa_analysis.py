"""DSA phase tests on crafted programs (§5.1, Figs. 5.1–5.6)."""

import pytest

from repro.dsa import (
    DataStructureAnalysis,
    FLAG_COMPLETE,
    FLAG_HEAP,
    FLAG_INCOMPLETE,
    FLAG_INT_TO_PTR,
    FLAG_PTR_TO_INT,
    FLAG_STACK,
    FLAG_UNKNOWN,
)
from repro.ir import (
    INT32,
    INT64,
    ModuleBuilder,
    PointerType,
    StructType,
    VOID,
    VOID_PTR,
    verify_module,
)


def _analyze(mb):
    verify_module(mb.module)
    return DataStructureAnalysis(mb.module).run()


def _node(dsa, fn, reg):
    cell = dsa.cell_for_register(fn, reg.name)
    assert cell is not None, f"no cell for {reg.name}"
    return cell.node.find()


class TestLocalPhase:
    def test_heap_and_stack_flags(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        h = b.malloc(INT64, b.i64(4))
        s = b.alloca(INT64)
        b.store(s, b.i64(0))
        b.free(h)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", h).has(FLAG_HEAP)
        assert _node(dsa, "main", s).has(FLAG_STACK)

    def test_ptr_to_int_flags_node(self):
        """Fig. 5.1(a): a pointer cast to an integer marks its node P."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        p = b.malloc(INT64, b.i64(3))
        b.ptr_to_int(p)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", p).has(FLAG_PTR_TO_INT)

    def test_int_to_ptr_round_trip_aliases_and_marks_unknown(self):
        """Fig. 5.1(a) continued: int→pointer yields an unknown node aliased
        with the original pointee when the taint is visible."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        p = b.malloc(INT64, b.i64(3))
        i = b.ptr_to_int(p)
        j = b.add(i, b.i64(8))
        q = b.int_to_ptr(j, INT64)
        b.store(q, b.i64(1))
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        pn = _node(dsa, "main", p)
        qn = _node(dsa, "main", q)
        assert pn is qn
        assert pn.has(FLAG_UNKNOWN) and pn.has(FLAG_INT_TO_PTR)

    def test_untainted_int_to_ptr_is_fresh_unknown(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        clean = b.malloc(INT64, b.i64(2))
        q = b.int_to_ptr(b.i64(0x100010), INT64)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", q).has(FLAG_UNKNOWN)
        assert not _node(dsa, "main", clean).has(FLAG_UNKNOWN)

    def test_store_links_pointee(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        slot = b.malloc(PointerType(INT64))
        val = b.malloc(INT64, b.i64(2))
        val0 = b.elem_addr(val, b.i64(0))
        b.store(slot, val0)
        loaded = b.load(slot)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", loaded) is _node(dsa, "main", val)

    def test_masquerading_pointer_store(self):
        """Fig. 5.3: storing a ptrtoint'd value as an integer marks the slot
        P and the masqueraded pointee unknown."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        data = b.malloc(INT64, b.i64(2))
        stash = b.malloc(INT64)
        as_int = b.ptr_to_int(data)
        b.store(stash, as_int)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", stash).has(FLAG_PTR_TO_INT)
        assert _node(dsa, "main", data).has(FLAG_UNKNOWN)

    def test_loading_masqueraded_int_taints(self):
        """§5.5 load-comparison problem: loading an int from a P node and
        casting it back reaches the masqueraded object."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        data = b.malloc(INT64, b.i64(2))
        stash = b.malloc(INT64)
        b.store(stash, b.ptr_to_int(data))
        lifted = b.load(stash)
        q = b.int_to_ptr(lifted, INT64)
        v = b.load(q)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", q) is _node(dsa, "main", data)


class TestInterprocedural:
    def test_bottom_up_propagates_callee_allocation(self):
        """A heap node allocated in a callee and returned is visible (with
        its flags) at the caller's result register."""
        mb = ModuleBuilder()
        mk, kb = mb.define("mk", PointerType(INT64), [], [])
        arr = kb.malloc(INT64, kb.i64(2))
        p = kb.elem_addr(arr, kb.i64(0))
        kb.ret(p)
        fn, b = mb.define("main", INT32)
        q = b.call("mk", [])
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", q).has(FLAG_HEAP)

    def test_top_down_pushes_unknown_into_callee(self):
        """A callee storing through its parameter must see the caller's
        unknown flag (soundness of Ch. 5 plans)."""
        mb = ModuleBuilder()
        sink, sb = mb.define("sink", INT32, [PointerType(INT64)], ["p"])
        sb.store(sink.params[0], sb.i64(1))
        sb.ret(sb.i32(0))
        fn, b = mb.define("main", INT32)
        q = b.int_to_ptr(b.i64(0x100040), INT64)
        b.call("sink", [q])
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        formal = dsa.cell_for_register("sink", "p")
        assert formal.node.find().has(FLAG_UNKNOWN)

    def test_recursive_function_terminates(self):
        mb = ModuleBuilder()
        node_t = StructType.opaque("N")
        node_t.set_fields([INT64, PointerType(node_t)])
        walk, wb = mb.define("walk", INT64, [PointerType(node_t)], ["n"])
        isnull = wb.eq(walk.params[0], wb.null(node_t))
        with wb.if_then(isnull):
            wb.ret(wb.i64(0))
        nxt = wb.load(wb.field_addr(walk.params[0], 1))
        rest = wb.call("walk", [nxt])
        v = wb.load(wb.field_addr(walk.params[0], 0))
        wb.ret(wb.add(v, rest))
        fn, b = mb.define("main", INT32)
        b.call("walk", [b.null(node_t)])
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert dsa.graph("walk") is not None

    def test_external_call_marks_args_incomplete(self):
        mb = ModuleBuilder()
        mb.declare_external("print_str", VOID, [VOID_PTR])
        fn, b = mb.define("main", INT32)
        p = b.malloc(INT64, b.i64(2))
        b.call("print_str", [b.ptr_cast(p, VOID)])
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", p).has(FLAG_INCOMPLETE)

    def test_unsummarized_external_makes_args_unknown(self):
        mb = ModuleBuilder()
        mb.declare_external("mystery", VOID, [VOID_PTR])
        fn, b = mb.define("main", INT32)
        p = b.malloc(INT64, b.i64(2))
        b.call("mystery", [b.ptr_cast(p, VOID)])
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", p).has(FLAG_UNKNOWN)

    def test_strcpy_summary_aliases_return_to_dest(self):
        mb = ModuleBuilder()
        mb.declare_external("strcpy", VOID_PTR, [VOID_PTR, VOID_PTR])
        from repro.ir import INT8

        fn, b = mb.define("main", INT32)
        dest = b.malloc(INT8, b.i64(8))
        src = b.malloc(INT8, b.i64(8))
        dv = b.ptr_cast(dest, VOID)
        sv = b.ptr_cast(src, VOID)
        rv = b.call("strcpy", [dv, sv])
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", rv) is _node(dsa, "main", dest)


class TestCompleteness:
    def test_private_allocation_is_complete(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        p = b.malloc(INT64, b.i64(2))
        b.store(b.elem_addr(p, b.i64(0)), b.i64(1))
        b.free(p)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        assert _node(dsa, "main", p).has(FLAG_COMPLETE)

    def test_unknown_node_never_complete(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        q = b.int_to_ptr(b.i64(0x100080), INT64)
        b.ret(b.i32(0))
        dsa = _analyze(mb)
        n = _node(dsa, "main", q)
        assert not n.has(FLAG_COMPLETE)
