"""Shadow type (``st()``) tests against the paper's exact examples.

Table 2.2 gives four worked examples (``int8[]*``, ``int8[]**``, the
``LinkedList``, and the ``dir``/``file`` pair); these tests assert the
resulting structures field-for-field.  Because this implementation realizes
the paper's placeholders as identified structs, comparisons are structural.
"""

import pytest

from repro.core import ShadowTypeBuilder, NSOP_FIELD, ROP_FIELD
from repro.ir import (
    ArrayType,
    FLOAT64,
    FunctionType,
    INT32,
    INT64,
    INT8,
    PointerType,
    StructType,
    UnionType,
    VOID,
    VOID_PTR,
)


@pytest.fixture
def st():
    return ShadowTypeBuilder()


def is_void_ptr(t):
    return isinstance(t, PointerType) and t.pointee is VOID or t == VOID_PTR


class TestNullShadows:
    """Primitive, function, and void types have the null shadow type."""

    @pytest.mark.parametrize("t", [INT8, INT32, INT64, FLOAT64])
    def test_primitives(self, st, t):
        assert st.shadow_type(t) is None

    def test_function_type(self, st):
        assert st.shadow_type(FunctionType(VOID, [PointerType(INT8)])) is None

    def test_void(self, st):
        assert st.shadow_type(VOID) is None

    def test_pointer_free_struct(self, st):
        assert st.shadow_type(StructType([INT32, FLOAT64])) is None

    def test_pointer_free_array(self, st):
        assert st.shadow_type(ArrayType(INT32, 8)) is None


class TestTable22Examples:
    def test_int8_array_ptr(self, st):
        """st(int8[]*) = struct{ int8[]* rop; void* nsop; }"""
        t = PointerType(ArrayType(INT8))
        sdw = st.shadow_type(t)
        assert isinstance(sdw, StructType)
        assert len(sdw.fields) == 2
        assert sdw.fields[ROP_FIELD] == t
        assert is_void_ptr(sdw.fields[NSOP_FIELD])

    def test_int8_array_ptr_ptr(self, st):
        """st(int8[]**) = struct{ int8[]** rop; int8ArrayPtrSdwTy* nsop; }"""
        inner = PointerType(ArrayType(INT8))
        t = PointerType(inner)
        sdw = st.shadow_type(t)
        assert sdw.fields[ROP_FIELD] == t
        nsop = sdw.fields[NSOP_FIELD]
        assert isinstance(nsop, PointerType)
        inner_sdw = nsop.pointee
        assert isinstance(inner_sdw, StructType)
        assert inner_sdw.fields[ROP_FIELD] == inner
        assert is_void_ptr(inner_sdw.fields[NSOP_FIELD])

    def test_linked_list(self, st):
        """The LinkedList shadow: the int32 drops out; the nxt pointer maps
        to a {rop, nsop} pair whose nsop recursively points at the shadow."""
        ll = StructType.opaque("LinkedList")
        ll.set_fields([INT32, PointerType(ll)])
        sdw = st.shadow_type(ll)
        assert isinstance(sdw, StructType)
        # int32 data dropped: only nxtSdwObj remains
        assert len(sdw.fields) == 1
        pair = sdw.fields[0]
        assert isinstance(pair, StructType)
        assert pair.fields[ROP_FIELD] == PointerType(ll)
        nsop = pair.fields[NSOP_FIELD]
        assert isinstance(nsop, PointerType)
        # recursion: the NSOP points at the LinkedList shadow type itself
        assert nsop.pointee is sdw

    def test_dir_file_example(self, st):
        """The struct file example: name and parent become shadow pairs, the
        int32 size drops out."""
        dir_t = StructType.opaque("dir")
        dir_t.set_fields([PointerType(INT8)])  # some pointer-bearing body
        name_t = PointerType(ArrayType(INT8))
        file_t = StructType.opaque("file")
        file_t.set_fields([name_t, INT32, PointerType(dir_t)])
        sdw = st.shadow_type(file_t)
        assert len(sdw.fields) == 2  # size dropped
        name_pair, parent_pair = sdw.fields
        assert name_pair.fields[ROP_FIELD] == name_t
        assert is_void_ptr(name_pair.fields[NSOP_FIELD])
        assert parent_pair.fields[ROP_FIELD] == PointerType(dir_t)
        parent_nsop = parent_pair.fields[NSOP_FIELD]
        assert isinstance(parent_nsop, PointerType)
        assert isinstance(parent_nsop.pointee, StructType)


class TestDerivedRules:
    def test_array_shadow_maps_elementwise(self, st):
        t = ArrayType(PointerType(INT64), 4)
        sdw = st.shadow_type(t)
        assert isinstance(sdw, ArrayType)
        assert sdw.count == 4
        assert isinstance(sdw.element, StructType)

    def test_union_shadow(self, st):
        t = UnionType([PointerType(INT8), INT64])
        sdw = st.shadow_type(t)
        assert isinstance(sdw, UnionType)
        assert len(sdw.members) == 1  # the int64 member drops out

    def test_function_pointer_gets_void_nsop(self, st):
        fp = PointerType(FunctionType(VOID, [INT32]))
        sdw = st.shadow_type(fp)
        assert sdw.fields[ROP_FIELD] == fp
        assert is_void_ptr(sdw.fields[NSOP_FIELD])

    def test_memoization_returns_same_object(self, st):
        t = PointerType(ArrayType(INT8))
        assert st.shadow_type(t) is st.shadow_type(t)

    def test_memoization_is_structural(self, st):
        """Two equal pointer types share one shadow struct — the property
        that keeps NSOP types coherent across the whole transformed module."""
        t1 = PointerType(ArrayType(INT8))
        t2 = PointerType(ArrayType(INT8))
        assert st.shadow_type(t1) is st.shadow_type(t2)

    def test_mutually_recursive_structs(self, st):
        a = StructType.opaque("A")
        c = StructType.opaque("C")
        a.set_fields([PointerType(c), INT32])
        c.set_fields([PointerType(a)])
        sa = st.shadow_type(a)
        sc = st.shadow_type(c)
        # a's pair: {C*, st(C)*}; c's pair: {A*, st(A)*}
        assert sa.fields[0].fields[NSOP_FIELD].pointee is sc
        assert sc.fields[0].fields[NSOP_FIELD].pointee is sa


class TestPhi:
    """φ() (Eq. 2.2): original field index → shadow struct field index."""

    def test_phi_skips_dropped_fields(self, st):
        t = StructType(
            [INT32, PointerType(INT8), FLOAT64, PointerType(INT64), INT8]
        )
        assert st.shadow_field_index(t, 1) == 0
        assert st.shadow_field_index(t, 3) == 1

    def test_phi_on_all_pointer_struct(self, st):
        t = StructType([PointerType(INT8)] * 3)
        for i in range(3):
            assert st.shadow_field_index(t, i) == i
