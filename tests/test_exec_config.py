"""ExecConfig (the single env-parse point), the run() facade, and the
executor telemetry it returns.

Covers the ``DPMR_*`` knob parsing, the removal of the pre-PR-4 per-call
kwarg aliases (``jobs=``/``processes=``/``incremental=`` now raise
``TypeError``), the manifest every invocation produces (worker decision
and why, serial-fallback reason, cache stats), and the previously-silent
serial fallback becoming a logged warning.
"""

from __future__ import annotations

import logging
from unittest import mock

import pytest

from repro.apps import app_factory
from repro.eval import (
    CampaignResult,
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    job_for_harness,
    run,
    run_campaign_jobs,
    run_campaign_jobs_with_manifest,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE
from repro.obs import JsonlTracer, RunManifest


@pytest.fixture(scope="module")
def harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1))


@pytest.fixture(scope="module")
def variants():
    return [
        v
        for v in diversity_variants("sds")
        if v.name in ("no-diversity", "rearrange-heap")
    ]


class TestFromEnv:
    def test_empty_environment_gives_defaults(self):
        cfg = ExecConfig.from_env({})
        assert cfg == ExecConfig()
        assert cfg.jobs == 1
        assert cfg.incremental is True
        assert cfg.trace_path is None
        assert cfg.counters is False
        assert cfg.timeout_factor == 20
        assert not cfg.observing

    def test_every_knob_parsed(self):
        cfg = ExecConfig.from_env(
            {
                "DPMR_JOBS": "8",
                "DPMR_INCREMENTAL": "0",
                "DPMR_TRACE": "/tmp/t.jsonl",
                "DPMR_TRACE_EVENTS": "run-start, run-end ,fault",
                "DPMR_COUNTERS": "yes",
                "DPMR_TIMEOUT_FACTOR": "7",
                "DPMR_MANIFEST": "/tmp/m.json",
                "DPMR_SHARDS": "4",
            }
        )
        assert cfg.jobs == 8
        assert cfg.shards == 4
        assert cfg.incremental is False
        assert cfg.trace_path == "/tmp/t.jsonl"
        assert cfg.trace_events == ("run-start", "run-end", "fault")
        assert cfg.counters is True
        assert cfg.timeout_factor == 7
        assert cfg.manifest_path == "/tmp/m.json"
        assert cfg.observing

    def test_jobs_clamped_to_at_least_one(self):
        assert ExecConfig.from_env({"DPMR_JOBS": "0"}).jobs == 1
        assert ExecConfig.from_env({"DPMR_JOBS": "-3"}).jobs == 1

    def test_shards_default_and_clamped_to_at_least_one(self):
        assert ExecConfig.from_env({}).shards == 1
        assert ExecConfig.from_env({"DPMR_SHARDS": "0"}).shards == 1
        assert ExecConfig.from_env({"DPMR_SHARDS": "-2"}).shards == 1
        with pytest.raises(ValueError, match="DPMR_SHARDS"):
            ExecConfig.from_env({"DPMR_SHARDS": "many"})

    def test_bad_int_rejected(self):
        with pytest.raises(ValueError, match="DPMR_JOBS"):
            ExecConfig.from_env({"DPMR_JOBS": "many"})
        with pytest.raises(ValueError, match="DPMR_TIMEOUT_FACTOR"):
            ExecConfig.from_env({"DPMR_TIMEOUT_FACTOR": "soon"})

    def test_bad_flag_rejected(self):
        with pytest.raises(ValueError, match="DPMR_COUNTERS"):
            ExecConfig.from_env({"DPMR_COUNTERS": "maybe"})

    def test_blank_values_are_defaults(self):
        cfg = ExecConfig.from_env({"DPMR_TRACE": "  ", "DPMR_JOBS": ""})
        assert cfg.trace_path is None
        assert cfg.jobs == 1


class TestDerived:
    def test_make_tracer_none_without_trace_path(self):
        assert ExecConfig().make_tracer() is None

    def test_make_tracer_builds_jsonl_tracer(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = ExecConfig(trace_path=path, trace_events=("fault",)).make_tracer()
        assert isinstance(tracer, JsonlTracer)
        assert tracer.wants("fault") and not tracer.wants("heap")
        tracer.close()

    def test_make_tracer_validates_event_kinds(self, tmp_path):
        cfg = ExecConfig(
            trace_path=str(tmp_path / "t.jsonl"), trace_events=("bogus",)
        )
        with pytest.raises(ValueError, match="unknown trace event kind"):
            cfg.make_tracer()

    def test_effective_manifest_path_precedence(self):
        assert ExecConfig().effective_manifest_path() is None
        assert (
            ExecConfig(trace_path="/tmp/t.jsonl").effective_manifest_path()
            == "/tmp/t.jsonl.manifest.json"
        )
        assert (
            ExecConfig(
                trace_path="/tmp/t.jsonl", manifest_path="/tmp/m.json"
            ).effective_manifest_path()
            == "/tmp/m.json"
        )

    def test_with_jobs(self):
        cfg = ExecConfig(counters=True)
        assert cfg.with_jobs(4).jobs == 4
        assert cfg.with_jobs(0).jobs == 1
        assert cfg.with_jobs(4).counters is True


class TestRemovedAliases:
    """The PR-4 deprecation soak is over: ExecConfig is the only knob
    surface, and the old per-call kwargs fail loudly instead of warning."""

    def test_run_campaign_jobs_kwargs_removed(self, harness, variants):
        job = job_for_harness(harness, variants[:1], HEAP_ARRAY_RESIZE)
        with pytest.raises(TypeError, match="processes"):
            run_campaign_jobs([job], processes=1)
        with pytest.raises(TypeError, match="incremental"):
            run_campaign_jobs([job], incremental=False)

    def test_harness_run_campaign_kwargs_removed(self, harness, variants):
        with pytest.raises(TypeError, match="jobs"):
            harness.run_campaign(variants[:1], HEAP_ARRAY_RESIZE, jobs=1)
        with pytest.raises(TypeError, match="incremental"):
            harness.run_campaign(
                variants[:1], HEAP_ARRAY_RESIZE, incremental=True
            )

    def test_merge_deprecated_is_gone(self):
        with pytest.raises(ImportError):
            from repro.eval.config import merge_deprecated  # noqa: F401

    def test_config_path_does_not_warn(self, harness, variants):
        import warnings

        job = job_for_harness(harness, variants[:1], HEAP_ARRAY_RESIZE)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_campaign_jobs([job], config=ExecConfig())


class TestSerialFallbackTelemetry:
    def test_fallback_is_warned_and_recorded(self, caplog, harness, variants):
        # A campaign far below the min-work threshold: jobs=4 must fall back
        # to serial — and say so, in the log and in the manifest.
        with caplog.at_level(logging.WARNING, logger="repro.eval.parallel"):
            res = run(
                harness,
                variants,
                kind=HEAP_ARRAY_RESIZE,
                max_sites=1,
                config=ExecConfig(jobs=4),
            )
        assert any("runs serially" in r.message for r in caplog.records)
        m = res.manifest
        assert m.requested_jobs == 4
        assert m.effective_jobs == 1
        assert m.serial_fallback is not None

    def test_serial_request_is_not_a_fallback(self, harness, variants):
        res = run(
            harness,
            variants,
            kind=HEAP_ARRAY_RESIZE,
            max_sites=1,
            config=ExecConfig(jobs=1),
        )
        assert res.manifest.serial_fallback is None
        assert "serial" in res.manifest.worker_reason


class TestRunFacade:
    def test_campaign_result_shape(self, harness, variants):
        res = run(harness, variants, kind=HEAP_ARRAY_RESIZE, config=ExecConfig())
        assert isinstance(res, CampaignResult)
        assert len(res) == len(res.records) > 0
        assert list(iter(res)) == res.records
        m = res.manifest
        assert m.mode == "campaign"
        assert m.n_records == len(res)
        assert sum(m.status_counts.values()) == len(res)
        assert m.n_jobs == 1 and m.n_items == len(res)
        assert [jm.workload for jm in m.jobs] == ["mcf"]
        assert m.jobs[0].n_sites == len(m.jobs[0].sites) > 0
        # Incremental path: the function-level transform cache was used.
        assert m.incremental is True
        assert m.jobs[0].cache_hits > 0
        assert m.jobs[0].builds_cached > 0

    def test_clean_mode(self, harness, variants):
        res = run(harness, variants, config=ExecConfig(counters=True))
        assert len(res) == len(variants) * len(harness.seeds)
        m = res.manifest
        assert m.mode == "clean"
        assert m.effective_jobs == 1
        assert m.counters_enabled is True
        assert m.counter_totals.get("dpmr.compare", 0) > 0
        assert all(r.site is None for r in res)

    def test_dispatch_errors(self, harness, variants):
        with pytest.raises(TypeError, match="requires variants"):
            run(harness)
        with pytest.raises(TypeError, match="requires variants"):
            run(harness, kind=HEAP_ARRAY_RESIZE)
        job = job_for_harness(harness, variants, HEAP_ARRAY_RESIZE)
        with pytest.raises(TypeError, match="live on the jobs"):
            run([job], variants=variants)

    def test_manifest_persisted_next_to_trace(self, tmp_path, harness, variants):
        trace = str(tmp_path / "campaign.jsonl")
        res = run(
            harness,
            variants,
            kind=HEAP_ARRAY_RESIZE,
            config=ExecConfig(trace_path=trace),
        )
        expected = trace + ".manifest.json"
        assert res.manifest.path == expected
        loaded = RunManifest.read(expected)
        assert loaded.schema == res.manifest.schema
        assert loaded.n_records == len(res)
        assert loaded.trace_path == trace
        assert loaded.counter_totals == res.manifest.counter_totals

    def test_forced_fork_manifest_reports_parallelism(self, harness):
        # 1-core containers always serialize; pretend the machine is big
        # enough that the pool genuinely engages, and check the manifest
        # tells the truth while the records stay bit-identical.
        all_variants = [stdapp_variant()] + diversity_variants("sds")
        big = WorkloadHarness("mcf", app_factory("mcf", 1), seeds=(0, 1))
        serial = run(
            big, all_variants, kind=HEAP_ARRAY_RESIZE, config=ExecConfig(jobs=1)
        )
        with mock.patch("repro.eval.parallel.os.cpu_count", return_value=4):
            parallel = run(
                big,
                all_variants,
                kind=HEAP_ARRAY_RESIZE,
                config=ExecConfig(jobs=2),
            )
        assert parallel.manifest.effective_jobs == 2
        assert parallel.manifest.serial_fallback is None
        key = lambda r: (
            r.workload,
            r.variant,
            r.site,
            r.run,
            r.result.status,
            r.result.exit_code,
            r.result.output_text,
            r.result.cycles,
            r.result.instructions,
            tuple(sorted(r.result.fault_activations.items())),
        )
        assert [key(r) for r in serial] == [key(r) for r in parallel]

    def test_explicit_tracer_overrides_config(self, harness, variants):
        from repro.obs import CollectingTracer

        tracer = CollectingTracer()
        res = run(
            harness,
            variants,
            kind=HEAP_ARRAY_RESIZE,
            max_sites=1,
            config=ExecConfig(),
            tracer=tracer,
        )
        # Caller-owned tracer: events collected, no trace file recorded.
        assert res.manifest.trace_path is None
        starts = [e for e in tracer.events if e["ev"] == "run-start"]
        assert len(starts) == len(res)


def test_run_campaign_jobs_with_manifest_matches_wrapper(harness, variants):
    job = job_for_harness(harness, variants, HEAP_ARRAY_RESIZE)
    records, manifest = run_campaign_jobs_with_manifest([job], config=ExecConfig())
    wrapped = run_campaign_jobs([job], config=ExecConfig())
    assert len(records) == len(wrapped) == manifest.n_records
