"""IRBuilder and structured-control-flow tests."""

import pytest

from repro.ir import (
    INT32,
    INT64,
    VOID,
    ModuleBuilder,
    format_function,
    verify_module,
)
from repro.machine import ExitStatus, run_process


def _run_main(mb):
    verify_module(mb.module)
    return run_process(mb.module)


class TestArithmetic:
    def test_constant_helpers(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        assert b.i8(300).value == 44  # wraps to int8
        assert b.i64(-1).value == -1
        b.ret(b.i32(0))

    def test_basic_arithmetic_runs(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        v = b.add(b.mul(b.i64(6), b.i64(7)), b.i64(-2))
        b.call("print_i64", [v])
        b.ret(b.i32(0))
        r = _run_main(mb)
        assert r.output_text == "40"

    def test_unknown_binop_rejected(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        with pytest.raises(ValueError):
            b.binop("bogus", b.i64(1), b.i64(2))


class TestControlFlowSugar:
    def test_if_then_both_paths(self):
        for cond_val, expected in ((1, "10"), (0, "0")):
            mb = ModuleBuilder()
            mb.declare_external("print_i64", VOID, [INT64])
            fn, b = mb.define("main", INT32)
            slot = b.alloca(INT64)
            b.store(slot, b.i64(0))
            c = b.ne(b.i64(cond_val), b.i64(0))
            with b.if_then(c):
                b.store(slot, b.i64(10))
            b.call("print_i64", [b.load(slot)])
            b.ret(b.i32(0))
            assert _run_main(mb).output_text == expected

    def test_if_else_arms(self):
        for cond_val, expected in ((1, "1"), (0, "2")):
            mb = ModuleBuilder()
            mb.declare_external("print_i64", VOID, [INT64])
            fn, b = mb.define("main", INT32)
            c = b.ne(b.i64(cond_val), b.i64(0))
            slot = b.alloca(INT64)
            with b.if_else(c) as arms:
                with arms.then():
                    b.store(slot, b.i64(1))
                with arms.otherwise():
                    b.store(slot, b.i64(2))
            b.call("print_i64", [b.load(slot)])
            b.ret(b.i32(0))
            assert _run_main(mb).output_text == expected

    def test_for_range_counts(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        acc = b.alloca(INT64)
        b.store(acc, b.i64(0))
        with b.for_range(b.i64(10), start=b.i64(2), step=b.i64(3)) as i:
            b.store(acc, b.add(b.load(acc), i))
        b.call("print_i64", [b.load(acc)])  # 2 + 5 + 8 = 15
        b.ret(b.i32(0))
        assert _run_main(mb).output_text == "15"

    def test_while_loop_break(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        i = b.alloca(INT64)
        b.store(i, b.i64(0))
        with b.while_loop(lambda bb: bb.slt(bb.load(i), bb.i64(100))) as loop:
            cur = b.load(i)
            done = b.sge(cur, b.i64(7))
            with b.if_then(done):
                loop.break_()
            b.store(i, b.add(cur, b.i64(1)))
        b.call("print_i64", [b.load(i)])
        b.ret(b.i32(0))
        assert _run_main(mb).output_text == "7"

    def test_nested_loops(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        acc = b.alloca(INT64)
        b.store(acc, b.i64(0))
        with b.for_range(b.i64(4)) as i:
            with b.for_range(b.i64(4)) as j:
                b.store(acc, b.add(b.load(acc), b.mul(i, j)))
        b.call("print_i64", [b.load(acc)])  # (0+1+2+3)^2 = 36
        b.ret(b.i32(0))
        assert _run_main(mb).output_text == "36"


class TestFunctions:
    def test_call_with_return_value(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        dbl, b = mb.define("double", INT64, [INT64], ["x"])
        b.ret(b.mul(dbl.params[0], b.i64(2)))
        fn, b = mb.define("main", INT32)
        b.call("print_i64", [b.call("double", [b.i64(21)])])
        b.ret(b.i32(0))
        assert _run_main(mb).output_text == "42"

    def test_recursion(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fact, b = mb.define("fact", INT64, [INT64], ["n"])
        base = b.sle(fact.params[0], b.i64(1))
        with b.if_else(base) as arms:
            with arms.then():
                b.ret(b.i64(1))
            with arms.otherwise():
                rec = b.call("fact", [b.sub(fact.params[0], b.i64(1))])
                b.ret(b.mul(fact.params[0], rec))
        b.unreachable()
        fn, b = mb.define("main", INT32)
        b.call("print_i64", [b.call("fact", [b.i64(6)])])
        b.ret(b.i32(0))
        assert _run_main(mb).output_text == "720"

    def test_indirect_call_through_function_pointer(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        inc, b = mb.define("inc", INT64, [INT64], ["x"])
        b.ret(b.add(inc.params[0], b.i64(1)))
        fn, b = mb.define("main", INT32)
        fp = b.func_addr(inc)
        r = b.call(fp, [b.i64(41)])
        b.call("print_i64", [r])
        b.ret(b.i32(0))
        assert _run_main(mb).output_text == "42"

    def test_format_function_renders(self, linked_list_module):
        text = format_function(linked_list_module.functions["createNode"])
        assert "createNode" in text
        assert "malloc" in text
