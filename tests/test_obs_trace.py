"""The observability layer (repro.obs): tracing, counters, trace replay.

Three properties are load-bearing:

* **zero cost when disabled** — a machine constructed without a tracer (or
  with ``NullTracer``) binds the uninstrumented interpreter fast path;
* **observation changes nothing** — records are bit-identical with
  observability on and off;
* **the trace is sufficient** — SF/CO/Ndet/Ddet and T2D recomputed from
  the JSONL trace alone match ``ExperimentRecord`` exactly, for both fault
  kinds of the evaluation.
"""

from __future__ import annotations

import pytest

from tests.conftest import build_sum_module
from repro.apps import app_factory
from repro.eval import ExecConfig, WorkloadHarness, diversity_variants, run
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.machine.interpreter import Machine
from repro.machine.process import run_process
from repro.obs import (
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    load_runs,
    t2d_by_run,
)


@pytest.fixture(scope="module")
def harness():
    return WorkloadHarness("mcf", app_factory("mcf", 1))


@pytest.fixture(scope="module")
def variants():
    return [
        v
        for v in diversity_variants("sds")
        if v.name in ("no-diversity", "rearrange-heap")
    ]


class TestFastPath:
    def test_default_machine_binds_uninstrumented_loop(self):
        m = Machine(build_sum_module())
        assert m._exec.__func__ is Machine._exec_function
        assert m.tracer is None
        assert m.counters is None

    def test_null_tracer_keeps_fast_path(self):
        m = Machine(build_sum_module(), tracer=NullTracer())
        assert m._exec.__func__ is Machine._exec_function
        assert m.tracer is None
        assert m.counters is None

    def test_counters_select_instrumented_loop(self):
        m = Machine(build_sum_module(), counters=True)
        assert m._exec.__func__ is Machine._exec_function_instrumented
        assert m.counters == {}


class TestObservationChangesNothing:
    def test_instrumented_run_bit_identical_to_fast_path(self):
        bare = run_process(build_sum_module())
        observed = run_process(build_sum_module(), counters=True)
        assert bare.counters is None
        assert observed.counters
        assert (bare.status, bare.exit_code, bare.output_text) == (
            observed.status,
            observed.exit_code,
            observed.output_text,
        )
        assert bare.cycles == observed.cycles
        assert bare.instructions == observed.instructions

    def test_opcode_counters_account_for_every_instruction(self):
        result = run_process(app_factory("mcf", 1)(), counters=True)
        op_total = sum(
            v for k, v in result.counters.items() if k.startswith("op.")
        )
        assert op_total == result.instructions

    def test_campaign_records_identical_with_observability_on(
        self, harness, variants
    ):
        plain = run(
            harness, variants, kind=HEAP_ARRAY_RESIZE, config=ExecConfig()
        )
        observed = run(
            harness,
            variants,
            kind=HEAP_ARRAY_RESIZE,
            config=ExecConfig(counters=True),
        )
        assert len(plain) == len(observed) > 0
        for p, o in zip(plain, observed):
            assert p.result.counters is None and o.result.counters
            assert (p.workload, p.variant, p.site, p.run) == (
                o.workload,
                o.variant,
                o.site,
                o.run,
            )
            assert p.result.status is o.result.status
            assert p.result.exit_code == o.result.exit_code
            assert p.result.output_text == o.result.output_text
            assert p.result.cycles == o.result.cycles
            assert p.result.instructions == o.result.instructions
            assert p.result.fault_activations == o.result.fault_activations


def _assert_trace_matches_records(trace_path, records):
    """Every §3.6 quantity recomputed from the trace matches the record."""
    runs = load_runs(trace_path)
    assert len(runs) == len(records)
    for r in records:
        rid = f"{r.workload}/{r.variant}/{r.site}/{r.run}"
        tr = runs[rid]
        assert tr.sf == r.sf
        assert tr.co == r.co
        assert tr.ndet == r.ndet
        assert tr.ddet == r.ddet
        assert tr.t2d == r.t2d
        assert tr.status == r.result.status.value
        assert tr.cycles == r.result.cycles
        assert tr.instructions == r.result.instructions
        assert tr.output == r.result.output_text
        assert tr.activations == r.result.fault_activations


class TestTraceReplay:
    """T2D (and the full classification) from the JSONL trace alone."""

    @pytest.mark.parametrize("kind", [HEAP_ARRAY_RESIZE, IMMEDIATE_FREE])
    def test_t2d_from_trace_bit_identical(self, tmp_path, harness, variants, kind):
        trace = str(tmp_path / "campaign.jsonl")
        res = run(
            harness,
            variants,
            kind=kind,
            config=ExecConfig(trace_path=trace),
        )
        assert len(res) > 0
        # The campaign must actually have detections for T2D to be a real
        # assertion, not a vacuous None == None.
        assert any(r.t2d is not None for r in res)
        _assert_trace_matches_records(trace, res.records)

    def test_restricted_event_set_still_replays_t2d(
        self, tmp_path, harness, variants
    ):
        trace = str(tmp_path / "restricted.jsonl")
        cfg = ExecConfig(
            trace_path=trace,
            trace_events=("run-start", "run-end", "fault"),
        )
        res = run(harness, variants, kind=HEAP_ARRAY_RESIZE, config=cfg)
        from repro.obs import read_events

        kinds = {e["ev"] for e in read_events(trace)}
        assert kinds <= {"run-start", "run-end", "fault"}
        replayed = t2d_by_run(trace)
        for r in res:
            assert replayed[f"{r.workload}/{r.variant}/{r.site}/{r.run}"] == r.t2d


class TestTracerBackends:
    def test_jsonl_tracer_rejects_unknown_event_kind(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            JsonlTracer(str(tmp_path / "t.jsonl"), events=["run-start", "oops"])

    def test_collecting_tracer_sees_dpmr_events(self, harness, variants):
        tracer = CollectingTracer()
        rec = harness.run_clean(variants[0], tracer=tracer, counters=True)
        kinds = {e["ev"] for e in tracer.events}
        assert {"run-start", "run-end", "heap", "replica", "compare"} <= kinds
        ends = [e for e in tracer.events if e["ev"] == "run-end"]
        assert len(ends) == 1
        assert ends[0]["status"] == rec.result.status.value
        assert ends[0]["counters"] == rec.result.counters
        # Replica traffic shows up both as events and as counters.
        assert rec.result.counters.get("dpmr.replica_malloc", 0) > 0
        assert rec.result.counters.get("dpmr.compare", 0) > 0
