"""Scope-expansion tests (§5.2–5.5): DSA plans under MDS end-to-end."""

import pytest

from repro.core import DpmrCompiler, DpmrTransformError
from repro.dsa import DataStructureAnalysis, DsaReplicationPlan, FLAG_UNKNOWN
from repro.dsa.scope import mark_unknown_closure
from repro.ir import (
    INT32,
    INT64,
    ModuleBuilder,
    PointerType,
    VOID,
    verify_module,
)
from repro.machine import ExitStatus, run_process


def _int_to_ptr_module():
    """Round-trips a pointer through an integer (forbidden by plain MDS)."""
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    buf = b.malloc(INT64, b.i64(4))
    with b.for_range(b.i64(4)) as i:
        b.store(b.elem_addr(buf, i), b.mul(i, b.i64(3)))
    as_int = b.ptr_to_int(b.elem_addr(buf, b.i64(0)))
    back = b.int_to_ptr(b.add(as_int, b.i64(16)), INT64)
    b.call("print_i64", [b.load(back)])
    other = b.malloc(INT64, b.i64(2))
    b.store(b.elem_addr(other, b.i64(0)), b.i64(42))
    b.call("print_i64", [b.load(b.elem_addr(other, b.i64(0)))])
    b.free(buf)
    b.free(other)
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def _masquerade_module():
    """Stores a pointer disguised as an integer, reloads, dereferences."""
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    data = b.malloc(INT64, b.i64(2))
    b.store(b.elem_addr(data, b.i64(1)), b.i64(77))
    stash = b.malloc(INT64)
    b.store(stash, b.ptr_to_int(b.elem_addr(data, b.i64(1))))
    lifted = b.load(stash)
    q = b.int_to_ptr(lifted, INT64)
    b.call("print_i64", [b.load(q)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


class TestPlanDecisions:
    def test_escaped_allocation_excluded(self):
        m = _int_to_ptr_module()
        plan = DsaReplicationPlan(m)
        s = plan.summary()
        assert s["allocs_excluded"] == 1
        assert s["allocs_replicated"] >= 2  # 'other' + loop counter slots

    def test_clean_program_fully_replicated(self, sum_module):
        plan = DsaReplicationPlan(sum_module)
        s = plan.summary()
        assert s["allocs_excluded"] == 0
        assert s["loads_excluded"] == 0
        assert s["stores_excluded"] == 0

    def test_plan_allows_int_to_pointer(self, sum_module):
        assert DsaReplicationPlan(sum_module).allows_int_to_pointer()

    def test_mark_unknown_closure_spreads_through_fields(self):
        """markX (Fig. 5.7): objects reachable from an unknown node become
        unknown too."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        inner = b.malloc(INT64, b.i64(2))
        slot = b.malloc(PointerType(INT64))
        b.store(slot, b.elem_addr(inner, b.i64(0)))
        # the *slot* escapes via int round trip
        q = b.int_to_ptr(b.ptr_to_int(slot), PointerType(INT64))
        loaded = b.load(q)
        b.ret(b.i32(0))
        verify_module(mb.module)
        analysis = DataStructureAnalysis(mb.module).run()
        mark_unknown_closure(analysis)
        inner_node = analysis.cell_for_register("main", inner.name).node.find()
        assert inner_node.has(FLAG_UNKNOWN)


class TestEndToEnd:
    def test_plain_designs_reject_int_to_pointer(self):
        for design in ("sds", "mds"):
            with pytest.raises(DpmrTransformError):
                DpmrCompiler(design=design).compile(_int_to_ptr_module())

    def test_dsa_mds_runs_int_to_pointer_program(self):
        m = _int_to_ptr_module()
        golden = run_process(m)
        plan = DsaReplicationPlan(m)
        r = DpmrCompiler(design="mds", plan=plan).compile(m).run()
        assert r.status is ExitStatus.NORMAL, r.detail
        assert r.output_text == golden.output_text

    def test_dsa_mds_runs_masquerading_pointer_program(self):
        m = _masquerade_module()
        golden = run_process(m)
        plan = DsaReplicationPlan(m)
        r = DpmrCompiler(design="mds", plan=plan).compile(m).run()
        assert r.status is ExitStatus.NORMAL, r.detail
        assert r.output_text == golden.output_text == "77"

    def test_replicated_portion_still_detects_errors(self):
        """The refined partial replica loses coverage only on excluded
        objects; faults in replicated memory are still caught."""
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        escaped = b.int_to_ptr(b.i64(0x100100), INT64)  # unknown pointer
        a = b.malloc(INT64, b.i64(4))
        victim = b.malloc(INT64, b.i64(4))
        with b.for_range(b.i64(4)) as i:
            b.store(b.elem_addr(victim, i), b.i64(7))
        with b.for_range(b.i64(12)) as i:  # overflow out of a
            b.store(b.elem_addr(a, i), b.i64(1))
        b.call("print_i64", [b.load(b.elem_addr(victim, b.i64(0)))])
        b.ret(b.i32(0))
        verify_module(mb.module)
        plan = DsaReplicationPlan(mb.module)
        r = DpmrCompiler(design="mds", plan=plan).compile(mb.module).run()
        assert r.status is ExitStatus.DPMR_DETECTED

    def test_dsa_plan_on_all_apps_is_full_replication(self):
        """The four workloads are clean C-like programs: DSA must not
        exclude anything, and the DSA build must behave identically."""
        from repro.apps import APP_BUILDERS

        for name, build_app in APP_BUILDERS.items():
            m = build_app(1)
            plan = DsaReplicationPlan(m)
            s = plan.summary()
            assert s["allocs_excluded"] == 0, name
            golden = run_process(build_app(1))
            r = DpmrCompiler(design="mds", plan=plan).compile(m).run()
            assert r.status is ExitStatus.NORMAL, (name, r.detail)
            assert r.output_text == golden.output_text, name

    def test_plan_for_wrong_module_rejected(self, sum_module):
        from tests.conftest import build_sum_module

        plan = DsaReplicationPlan(build_sum_module())
        with pytest.raises(ValueError, match="different module"):
            DpmrCompiler(design="mds", plan=plan).compile(sum_module)
