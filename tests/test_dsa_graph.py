"""DS graph mechanics: unification, collapsing, field sensitivity."""

from repro.dsa import (
    Cell,
    DSGraph,
    FLAG_COLLAPSED,
    FLAG_HEAP,
    FLAG_UNKNOWN,
)


def test_merge_unions_flags_and_globals():
    g = DSGraph("t")
    a = g.make_node(FLAG_HEAP)
    b = g.make_node(FLAG_UNKNOWN)
    b.globals.add("x")
    g.merge(a, b)
    rep = a.find()
    assert rep is b.find()
    assert FLAG_HEAP in rep.flags and FLAG_UNKNOWN in rep.flags
    assert "x" in rep.globals


def test_union_find_path_compression():
    g = DSGraph("t")
    nodes = [g.make_node() for _ in range(5)]
    for x, y in zip(nodes, nodes[1:]):
        g.merge(y, x)
    rep = nodes[0].find()
    assert all(n.find() is rep for n in nodes)


def test_field_sensitivity_distinct_offsets():
    g = DSGraph("t")
    n = g.make_node()
    t0 = g.field_target(Cell(n, 0))
    t8 = g.field_target(Cell(n, 8))
    assert t0.node.find() is not t8.node.find()
    # repeated access returns the same target
    assert g.field_target(Cell(n, 0)).node.find() is t0.node.find()


def test_offset_conflict_collapses():
    g = DSGraph("t")
    a = g.make_node()
    b = g.make_node()
    g.field_target(Cell(a, 0))
    g.field_target(Cell(a, 8))
    # unify the same node at two different offsets → collapse
    g.unify_cells(Cell(a, 0), Cell(a, 8))
    assert a.find().is_collapsed
    assert len(a.find().fields) <= 1


def test_collapse_folds_fields():
    g = DSGraph("t")
    n = g.make_node()
    x = g.field_target(Cell(n, 0))
    y = g.field_target(Cell(n, 8))
    g.collapse(n)
    rep = n.find()
    assert FLAG_COLLAPSED in rep.flags
    assert list(rep.fields) == [0]
    # both previous targets merged
    assert x.node.find() is y.node.find()


def test_merge_collapsed_with_fielded():
    g = DSGraph("t")
    a = g.make_node()
    g.field_target(Cell(a, 0))
    g.field_target(Cell(a, 8))
    b = g.make_node()
    g.collapse(b)
    g.merge(b, a)
    assert b.find().is_collapsed


def test_reachable_from_traverses_edges():
    g = DSGraph("t")
    a = g.make_node()
    mid = g.field_target(Cell(a, 0))
    leaf = g.field_target(Cell(mid.node, 0))
    nodes = g.reachable_from([Cell(a, 0)])
    ids = {n.find().id for n in nodes}
    assert leaf.node.find().id in ids
    assert len(ids) == 3


def test_reachable_from_handles_cycles():
    g = DSGraph("t")
    a = g.make_node()
    t = g.field_target(Cell(a, 0))
    g.unify_cells(t, Cell(a, 0))  # self loop
    nodes = g.reachable_from([Cell(a, 0)])
    assert len(nodes) >= 1


def test_set_cell_unifies_on_rebind():
    g = DSGraph("t")
    a = g.make_node()
    b = g.make_node(FLAG_UNKNOWN)
    g.set_cell("r", Cell(a, 0))
    g.set_cell("r", Cell(b, 0))
    assert a.find() is b.find()
    assert g.cell_for("r").node.has(FLAG_UNKNOWN)
