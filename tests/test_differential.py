"""Differential property testing: DPMR must be behaviour-preserving.

Hypothesis generates random *error-free* straight-line programs over heap
arrays, stack slots, and pointer indirection; every generated program must
produce identical output under golden execution, SDS, and MDS (and under
each diversity transformation), with no false detections — the core
correctness contract of §2 ("states do not diverge under error-free
execution").
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    DpmrCompiler,
    PadMalloc,
    RearrangeHeap,
    ZeroBeforeFree,
)
from repro.ir import INT32, INT64, ModuleBuilder, PointerType, VOID, verify_module
from repro.machine import ExitStatus, run_process

N_ARRAYS = 3
ARRAY_LEN = 6
N_SLOTS = 2

op_store = st.tuples(
    st.just("store"),
    st.integers(0, N_ARRAYS - 1),
    st.integers(0, ARRAY_LEN - 1),
    st.integers(-1000, 1000),
)
op_add = st.tuples(
    st.just("add"),
    st.integers(0, N_ARRAYS - 1),
    st.integers(0, ARRAY_LEN - 1),
    st.integers(0, N_SLOTS - 1),
)
op_copy = st.tuples(
    st.just("copy"),
    st.integers(0, N_ARRAYS - 1),
    st.integers(0, ARRAY_LEN - 1),
    st.integers(0, N_ARRAYS - 1),
    st.integers(0, ARRAY_LEN - 1),
)
op_ptr = st.tuples(
    st.just("ptr"),
    st.integers(0, N_ARRAYS - 1),
    st.integers(0, ARRAY_LEN - 1),
)
op_realloc = st.tuples(st.just("realloc"), st.integers(0, N_ARRAYS - 1))

program_strategy = st.lists(
    st.one_of(op_store, op_add, op_copy, op_ptr, op_realloc),
    min_size=1,
    max_size=25,
)


def build_program(ops):
    """Lower an op list to an IR module (always error-free by construction)."""
    mb = ModuleBuilder("generated")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    arrays = []
    for k in range(N_ARRAYS):
        arr = b.malloc(INT64, b.i64(ARRAY_LEN), hint=f"arr{k}")
        with b.for_range(b.i64(ARRAY_LEN)) as i:
            b.store(b.elem_addr(arr, i), b.add(i, b.i64(k)))
        arrays.append(arr)
    # arrays may be re-allocated; keep current handles in alloca slots
    handles = []
    for k, arr in enumerate(arrays):
        h = b.alloca(arr.type, hint=f"h{k}")
        b.store(h, arr)
        handles.append(h)
    slots = []
    for k in range(N_SLOTS):
        s = b.alloca(INT64, hint=f"s{k}")
        b.store(s, b.i64(k))
        slots.append(s)
    pslot = b.alloca(PointerType(INT64), hint="p")
    first = b.load(handles[0])
    b.store(pslot, b.elem_addr(first, b.i64(0)))

    for op in ops:
        kind = op[0]
        if kind == "store":
            _, a, i, v = op
            arr = b.load(handles[a])
            b.store(b.elem_addr(arr, b.i64(i)), b.i64(v))
        elif kind == "add":
            _, a, i, s = op
            arr = b.load(handles[a])
            v = b.load(b.elem_addr(arr, b.i64(i)))
            b.store(slots[s], b.add(b.load(slots[s]), v))
        elif kind == "copy":
            _, a, i, c, j = op
            src = b.load(handles[a])
            dst = b.load(handles[c])
            v = b.load(b.elem_addr(src, b.i64(i)))
            b.store(b.elem_addr(dst, b.i64(j)), v)
        elif kind == "ptr":
            _, a, i = op
            arr = b.load(handles[a])
            b.store(pslot, b.elem_addr(arr, b.i64(i)))
            p = b.load(pslot)
            b.store(slots[0], b.add(b.load(slots[0]), b.load(p)))
        elif kind == "realloc":
            _, a = op
            old = b.load(handles[a])
            fresh = b.malloc(INT64, b.i64(ARRAY_LEN), hint=f"re{a}")
            with b.for_range(b.i64(ARRAY_LEN)) as i:
                b.store(b.elem_addr(fresh, i), b.load(b.elem_addr(old, i)))
            b.free(old)
            b.store(handles[a], fresh)
            # keep the pointer slot valid: retarget it into array 0
            zero = b.load(handles[0])
            b.store(pslot, b.elem_addr(zero, b.i64(0)))

    # output: checksum of all arrays and slots
    for h in handles:
        arr = b.load(h)
        with b.for_range(b.i64(ARRAY_LEN)) as i:
            b.store(slots[0], b.add(b.load(slots[0]), b.load(b.elem_addr(arr, i))))
    for s in slots:
        b.call("print_i64", [b.load(s)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


@given(program_strategy)
@settings(max_examples=30)
def test_sds_and_mds_preserve_random_programs(ops):
    golden = run_process(build_program(ops))
    assert golden.status is ExitStatus.NORMAL
    for design in ("sds", "mds"):
        r = DpmrCompiler(design=design).compile(build_program(ops)).run()
        assert r.status is ExitStatus.NORMAL, (design, r.detail, ops)
        assert r.output_text == golden.output_text, (design, ops)


@given(program_strategy)
@settings(max_examples=12)
def test_diversity_variants_preserve_random_programs(ops):
    golden = run_process(build_program(ops))
    for diversity in (ZeroBeforeFree(), RearrangeHeap(), PadMalloc(32)):
        r = (
            DpmrCompiler(design="sds", diversity=diversity)
            .compile(build_program(ops))
            .run(seed=5)
        )
        assert r.status is ExitStatus.NORMAL, (diversity.name, r.detail, ops)
        assert r.output_text == golden.output_text, (diversity.name, ops)


@given(program_strategy)
@settings(max_examples=10)
def test_policies_preserve_random_programs(ops):
    from repro.core import static_50, temporal_1_2

    golden = run_process(build_program(ops))
    for policy in (temporal_1_2(), static_50()):
        r = (
            DpmrCompiler(design="sds", policy=policy)
            .compile(build_program(ops))
            .run()
        )
        assert r.status is ExitStatus.NORMAL, (policy.name, r.detail, ops)
        assert r.output_text == golden.output_text, (policy.name, ops)
