"""Verifier tests: each IR invariant rejects a matching violation."""

import pytest

from repro.ir import (
    INT32,
    INT64,
    FunctionType,
    Function,
    Module,
    ModuleBuilder,
    PointerType,
    Register,
    VOID,
    VerificationError,
    verify_module,
)
from repro.ir import instructions as ins
from repro.ir.values import ConstInt


def _empty_main():
    mb = ModuleBuilder()
    fn, b = mb.define("main", INT32)
    return mb, fn, b


def test_valid_module_passes(sum_module):
    verify_module(sum_module)


def test_unterminated_block_rejected():
    mb, fn, b = _empty_main()
    # no terminator emitted
    with pytest.raises(VerificationError, match="not terminated"):
        verify_module(mb.module)


def test_unknown_branch_target_rejected():
    mb, fn, b = _empty_main()
    b.emit(ins.Jump("nowhere"))
    with pytest.raises(VerificationError, match="unknown successor"):
        verify_module(mb.module)


def test_use_of_undefined_register_rejected():
    mb, fn, b = _empty_main()
    ghost = Register("ghost", INT64)
    b.emit(ins.Ret(ConstInt(INT32, 0)))
    fn.blocks[0].instructions.insert(
        0, ins.BinOp(Register("x", INT64), "add", ghost, ConstInt(INT64, 1))
    )
    with pytest.raises(VerificationError, match="undefined register"):
        verify_module(mb.module)


def test_ret_type_mismatch_rejected():
    mb, fn, b = _empty_main()
    b.emit(ins.Ret(ConstInt(INT64, 0)))  # main returns int32
    with pytest.raises(VerificationError, match="ret type"):
        verify_module(mb.module)


def test_ret_value_in_void_function_rejected():
    mb = ModuleBuilder()
    fn, b = mb.define("f", VOID)
    b.emit(ins.Ret(ConstInt(INT32, 1)))
    with pytest.raises(VerificationError, match="void"):
        verify_module(mb.module)


def test_call_arity_mismatch_rejected():
    mb = ModuleBuilder()
    g, gb = mb.define("g", INT64, [INT64], ["x"])
    gb.ret(g.params[0])
    fn, b = mb.define("main", INT32)
    b.emit(ins.Call(Register("r", INT64), "g", []))
    b.ret(b.i32(0))
    with pytest.raises(VerificationError, match="arg count"):
        verify_module(mb.module)


def test_call_to_unknown_function_rejected():
    mb, fn, b = _empty_main()
    b.emit(ins.Call(None, "missing", []))
    b.ret(b.i32(0))
    with pytest.raises(VerificationError, match="unknown"):
        verify_module(mb.module)


def test_load_of_aggregate_rejected():
    from repro.ir import StructType

    mb, fn, b = _empty_main()
    s = StructType([INT32, INT32])
    p = b.alloca(s)
    bad = Register("v", INT64)
    b.ret(b.i32(0))
    fn.blocks[0].instructions.insert(1, ins.Load(bad, p))
    with pytest.raises(VerificationError, match="load"):
        verify_module(mb.module)


def test_terminator_mid_block_rejected():
    mb, fn, b = _empty_main()
    b.ret(b.i32(0))
    fn.blocks[0].instructions.append(ins.Ret(ConstInt(INT32, 0)))
    with pytest.raises(VerificationError, match="terminator not last"):
        verify_module(mb.module)


def test_block_append_after_terminator_rejected():
    mb, fn, b = _empty_main()
    b.ret(b.i32(0))
    with pytest.raises(ValueError, match="terminated"):
        b.ret(b.i32(0))


def test_void_pointer_args_accepted():
    """void* params are compatible with typed pointer args (external code)."""
    mb = ModuleBuilder()
    mb.declare_external("sink", VOID, [PointerType(VOID)])
    fn, b = mb.define("main", INT32)
    p = b.malloc(INT64, b.i64(2))
    b.call("sink", [p])
    b.free(p)
    b.ret(b.i32(0))
    verify_module(mb.module)


def test_duplicate_function_rejected():
    m = Module()
    m.add_function(Function("f", FunctionType(VOID, [])))
    with pytest.raises(ValueError, match="duplicate"):
        m.add_function(Function("f", FunctionType(VOID, [])))
