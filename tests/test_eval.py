"""Evaluation framework tests: metrics of §3.6 and the workload harness."""

import pytest

from repro.eval import (
    ExperimentRecord,
    Variant,
    WorkloadHarness,
    by_variant,
    conditional_coverage_components,
    coverage,
    coverage_components,
    diversity_variants,
    mean_time_to_detection,
    policy_variants,
    std_not_all_det_sites,
    stdapp_variant,
)
from repro.faultinject import IMMEDIATE_FREE, HEAP_ARRAY_RESIZE
from repro.machine import ExitStatus, ProcessResult
from tests.conftest import build_sum_module


def _record(
    status=ExitStatus.NORMAL,
    exit_code=0,
    output="285",
    site="s1",
    activations=None,
    cycles=1000,
    variant="v",
):
    if activations is None:
        activations = {"s1": 100} if site else {}
    return ExperimentRecord(
        workload="w",
        variant=variant,
        site=site,
        run=0,
        result=ProcessResult(
            status=status,
            exit_code=exit_code,
            output=[output],
            cycles=cycles,
            instructions=cycles,
            fault_activations=activations,
        ),
        golden_output="285",
    )


class TestClassification:
    def test_correct_output(self):
        r = _record()
        assert r.sf and r.co and not r.ndet and not r.ddet and r.covered

    def test_wrong_output_not_covered(self):
        r = _record(output="999")
        assert r.sf and not r.co and not r.covered

    def test_detected_output_is_not_correct_output(self):
        """§3.6: 'incorrect output includes not only bad results but also
        error detection' — the literal interpretation."""
        r = _record(status=ExitStatus.DPMR_DETECTED, output="")
        assert not r.co and r.ddet and r.covered

    def test_crash_is_natural_detection(self):
        r = _record(status=ExitStatus.CRASH, output="")
        assert r.ndet and r.covered

    def test_error_exit_code_is_natural_detection(self):
        r = _record(exit_code=3, output="285")
        assert r.ndet and not r.co

    def test_timeout_neither_detected_nor_correct(self):
        r = _record(status=ExitStatus.TIMEOUT, output="")
        assert not r.covered

    def test_unactivated_fault_not_sf(self):
        r = _record(activations={})
        assert not r.sf

    def test_t2d_is_detection_minus_activation(self):
        r = _record(status=ExitStatus.DPMR_DETECTED, output="", cycles=600,
                    activations={"s1": 100})
        assert r.t2d == 500

    def test_t2d_undefined_for_correct_output(self):
        r = _record()
        assert r.t2d is None


class TestCoverageMetrics:
    def test_components_partition(self):
        records = [
            _record(),  # CO
            _record(status=ExitStatus.CRASH, output=""),  # Ndet
            _record(status=ExitStatus.DPMR_DETECTED, output=""),  # Ddet
            _record(status=ExitStatus.TIMEOUT, output=""),  # uncovered
        ]
        c = coverage_components(records)
        assert c.co == 0.25 and c.ndet == 0.25 and c.ddet == 0.25
        assert c.coverage == 0.75
        assert coverage(records) == 0.75

    def test_only_sf_records_count(self):
        records = [_record(), _record(activations={})]
        assert coverage_components(records).total_runs == 1

    def test_empty_records(self):
        c = coverage_components([])
        assert c.coverage == 0.0 and c.total_runs == 0

    def test_std_not_all_det_sites(self):
        """A site qualifies iff stdapp sometimes silently corrupted there."""
        records = [
            _record(site="good", output="285", activations={"good": 5}),
            _record(site="silent", output="999", activations={"silent": 5}),
            _record(
                site="crashy",
                status=ExitStatus.CRASH,
                output="",
                activations={"crashy": 5},
            ),
        ]
        assert std_not_all_det_sites(records) == {"silent"}

    def test_conditional_coverage_filters_sites(self):
        records = [
            _record(site="a", status=ExitStatus.DPMR_DETECTED, output="",
                    activations={"a": 5}),
            _record(site="b", output="285", activations={"b": 5}),
        ]
        c = conditional_coverage_components(records, {"a"})
        assert c.total_runs == 1 and c.ddet == 1.0

    def test_mean_time_to_detection(self):
        records = [
            _record(status=ExitStatus.DPMR_DETECTED, output="", cycles=300,
                    activations={"s1": 100}),
            _record(status=ExitStatus.CRASH, output="", cycles=700,
                    activations={"s1": 100}),
            _record(),  # CO: excluded
        ]
        assert mean_time_to_detection(records) == 400.0

    def test_mean_t2d_none_without_detections(self):
        assert mean_time_to_detection([_record()]) is None


class TestVariantSuites:
    def test_diversity_suite_shape(self):
        names = [v.name for v in diversity_variants("sds")]
        assert names == [
            "no-diversity",
            "zero-before-free",
            "rearrange-heap",
            "pad-malloc-8",
            "pad-malloc-32",
            "pad-malloc-256",
            "pad-malloc-1024",
        ]

    def test_policy_suite_uses_rearrange_heap(self):
        for v in policy_variants("mds"):
            assert v.diversity.name == "rearrange-heap"
        names = [v.name for v in policy_variants("sds")]
        assert "all-loads" in names and "static-10%" in names

    def test_stdapp_variant_is_untransformed(self, sum_module):
        compiled = stdapp_variant().compile(sum_module)
        r = compiled.run()
        assert r.status is ExitStatus.NORMAL


class TestHarness:
    def test_golden_run_and_timeout(self):
        h = WorkloadHarness("sum", build_sum_module)
        assert h.golden.status is ExitStatus.NORMAL
        assert h.timeout >= h.golden.cycles * 20

    def test_overhead_of_stdapp_is_one(self):
        h = WorkloadHarness("sum", build_sum_module)
        assert h.overhead(stdapp_variant()) == pytest.approx(1.0)

    def test_overhead_of_dpmr_exceeds_one(self):
        h = WorkloadHarness("sum", build_sum_module)
        v = diversity_variants("sds")[0]
        assert h.overhead(v) > 1.5

    def test_campaign_produces_records_per_site_and_variant(self):
        h = WorkloadHarness("sum", build_sum_module)
        variants = [stdapp_variant(), diversity_variants("sds")[0]]
        records = h.run_campaign(variants, IMMEDIATE_FREE)
        groups = by_variant(records)
        assert set(groups) == {"stdapp", "no-diversity"}
        n_sites = len({r.site for r in records})
        assert all(len(v) == n_sites for v in groups.values())

    def test_dpmr_coverage_at_least_stdapp(self):
        h = WorkloadHarness("sum", build_sum_module)
        variants = [stdapp_variant(), diversity_variants("sds")[2]]  # rearrange
        records = h.run_campaign(variants, HEAP_ARRAY_RESIZE)
        groups = by_variant(records)
        assert coverage(groups["rearrange-heap"]) >= coverage(groups["stdapp"])
