"""Property tests for the shard manifest merge (a commutative monoid).

:func:`repro.shard.merge.merge_manifests` must make the coordinator's
merged manifest independent of lease completion order and of how the
tuple space was partitioned.  Hypothesis checks the algebra directly:

* **associativity** and **commutativity** of the pairwise fold;
* **identity**: merging a singleton returns it (modulo ``path``, which a
  merged manifest never carries), merging nothing returns the identity;
* **partition invariance**: any permutation, grouped any way, merges to
  the same manifest — the property the coordinator actually relies on;
* **total preservation**: summed counters are exact sums, quarantine
  lists are exact unions, per-shard provenance partitions exactly;
* **round-trip**: merged schema-5 manifests survive to_dict/from_dict.

Floats in the strategies are dyadic rationals (n/4) so float addition is
exact and equality assertions are legitimate.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.obs.manifest import (  # noqa: E402
    JobManifest,
    QuarantineRecord,
    RunManifest,
    ShardManifest,
)
from repro.shard.merge import merge_identity, merge_manifests  # noqa: E402

WORKLOADS = ("art", "bzip2", "equake", "mcf")
KINDS = ("heap-array-resize", "immediate-free")

nat = st.integers(min_value=0, max_value=12)
dyadic = st.integers(min_value=0, max_value=48).map(lambda n: n / 4.0)
label = st.sampled_from(("", "campaign", "clean", "interp", "compiled"))
opt_label = st.sampled_from((None, "", "/a/store", "/b/store"))


@st.composite
def job_manifests(draw):
    """A canonical (sorted, key-unique) jobs list."""
    keys = sorted(
        draw(
            st.lists(
                st.tuples(st.sampled_from(WORKLOADS), st.sampled_from(KINDS)),
                unique=True,
                max_size=3,
            )
        )
    )
    return [
        JobManifest(
            workload=w,
            kind=k,
            n_sites=draw(nat),
            n_variants=draw(nat),
            n_seeds=draw(nat),
            sites=[f"site{i}" for i in range(draw(st.integers(0, 3)))],
            cache_hits=draw(nat),
            cache_misses=draw(nat),
            cache_full_rebuilds=draw(nat),
            builds_cached=draw(nat),
        )
        for w, k in keys
    ]


@st.composite
def quarantine_lists(draw):
    """A canonical (sorted, exact-duplicate-free) quarantine list."""
    keys = sorted(
        draw(
            st.lists(
                st.tuples(
                    st.sampled_from(WORKLOADS),
                    st.sampled_from(KINDS),
                    st.sampled_from(("site0", "site1")),
                    st.integers(min_value=1, max_value=3),
                    st.sampled_from(("worker died", "experiment timeout")),
                ),
                unique=True,
                max_size=3,
            )
        )
    )
    return [
        QuarantineRecord(workload=w, kind=k, site=s, attempts=a, reason=r)
        for w, k, s, a, r in keys
    ]


@st.composite
def shard_lists(draw):
    """A canonical (sorted, id-unique) per-shard provenance list."""
    ids = sorted(draw(st.lists(st.integers(0, 3), unique=True, max_size=3)))
    return [
        ShardManifest(
            shard=sid,
            leases=draw(nat),
            n_records=draw(nat),
            store_writes=draw(nat),
            retries=draw(nat),
            wall_s=draw(dyadic),
        )
        for sid in ids
    ]


_SUMMED = (
    "codegen_hits",
    "codegen_misses",
    "n_items",
    "n_records",
    "store_hits",
    "store_misses",
    "store_writes",
    "store_corrupt",
    "shared_hits",
    "retries",
    "worker_restarts",
    "exp_timeouts",
    "lease_grants",
    "lease_reassignments",
    "lease_expiries",
    "store_synced",
)


@st.composite
def manifests(draw):
    m = RunManifest(mode=draw(label))
    m.requested_jobs = draw(nat)
    m.effective_jobs = draw(nat)
    m.worker_reason = draw(label)
    m.serial_fallback = draw(opt_label)
    m.incremental = draw(st.booleans())
    m.trace_path = draw(opt_label)
    m.counters_enabled = draw(st.booleans())
    m.engine = draw(st.sampled_from(("", "interp", "compiled")))
    m.timeout_factor = draw(st.sampled_from((None, 1, 2, 8)))
    m.n_jobs = draw(nat)
    m.jobs = draw(job_manifests())
    m.store_path = draw(opt_label)
    m.quarantined = draw(quarantine_lists())
    m.shards = draw(shard_lists())
    m.n_shards = draw(nat)
    m.status_counts = draw(
        st.dictionaries(
            st.sampled_from(("detected", "undetected", "benign")), nat, max_size=3
        )
    )
    m.counter_totals = draw(
        st.dictionaries(st.sampled_from(("alloc", "free", "resize")), nat, max_size=3)
    )
    m.wall_s = draw(dyadic)
    m.python = draw(st.sampled_from(("", "3.11.9", "3.12.4")))
    m.cpu_count = draw(nat)
    m.path = draw(st.sampled_from((None, "/tmp/manifest.json")))
    for name in _SUMMED:
        setattr(m, name, draw(nat))
    return m


def canon(m: RunManifest) -> dict:
    """Comparable form: everything except ``path`` (never propagated)."""
    d = m.to_dict()
    d.pop("path")
    return d


@settings(max_examples=60, deadline=None)
@given(manifests(), manifests(), manifests())
def test_merge_is_associative(a, b, c):
    left = merge_manifests([merge_manifests([a, b]), c])
    right = merge_manifests([a, merge_manifests([b, c])])
    assert canon(left) == canon(right)


@settings(max_examples=60, deadline=None)
@given(manifests(), manifests())
def test_merge_is_commutative(a, b):
    assert canon(merge_manifests([a, b])) == canon(merge_manifests([b, a]))


@settings(max_examples=60, deadline=None)
@given(manifests())
def test_singleton_merge_is_identity(m):
    assert canon(merge_manifests([m])) == canon(m)
    assert merge_manifests([m]).path is None


def test_empty_merge_is_the_identity_element():
    assert canon(merge_manifests([])) == canon(merge_identity())


@settings(max_examples=60, deadline=None)
@given(
    st.lists(manifests(), min_size=1, max_size=5).flatmap(
        lambda ms: st.tuples(
            st.just(ms),
            st.permutations(ms),
            st.lists(st.integers(0, len(ms)), max_size=3).map(sorted),
        )
    )
)
def test_any_permutation_and_partition_merges_identically(case):
    ms, perm, cuts = case
    reference = merge_manifests(ms)
    bounds = [0] + [c for c in cuts if 0 < c < len(perm)] + [len(perm)]
    groups = [perm[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
    regrouped = merge_manifests(merge_manifests(g) for g in groups)
    assert canon(regrouped) == canon(reference)


@settings(max_examples=60, deadline=None)
@given(st.lists(manifests(), min_size=1, max_size=5))
def test_merge_preserves_totals(ms):
    merged = merge_manifests(ms)
    for name in _SUMMED:
        assert getattr(merged, name) == sum(getattr(m, name) for m in ms)
    assert merged.wall_s == max(m.wall_s for m in ms)
    assert merged.n_shards == max(m.n_shards for m in ms)
    for key in {k for m in ms for k in m.status_counts}:
        assert merged.status_counts[key] == sum(
            m.status_counts.get(key, 0) for m in ms
        )
    for key in {k for m in ms for k in m.counter_totals}:
        assert merged.counter_totals[key] == sum(
            m.counter_totals.get(key, 0) for m in ms
        )
    # Quarantine is an exact union.
    want = {
        (q.workload, q.kind, q.site, q.attempts, q.reason)
        for m in ms
        for q in m.quarantined
    }
    assert {
        (q.workload, q.kind, q.site, q.attempts, q.reason)
        for q in merged.quarantined
    } == want
    # Per-shard provenance partitions exactly (fields summed by shard id).
    for sid in {s.shard for m in ms for s in m.shards}:
        cells = [s for m in ms for s in m.shards if s.shard == sid]
        got = next(s for s in merged.shards if s.shard == sid)
        assert got.leases == sum(c.leases for c in cells)
        assert got.n_records == sum(c.n_records for c in cells)
        assert got.wall_s == sum(c.wall_s for c in cells)


@settings(max_examples=60, deadline=None)
@given(st.lists(manifests(), min_size=1, max_size=4))
def test_merged_manifest_round_trips_through_json(ms):
    merged = merge_manifests(ms)
    clone = RunManifest.from_dict(merged.to_dict())
    assert clone.to_dict() == merged.to_dict()
    assert all(isinstance(s, ShardManifest) for s in clone.shards)
