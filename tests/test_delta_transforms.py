"""Instruction-granular delta transforms: byte-identity + refusal fallback.

The incremental compiler's delta path replays the base build's translation
journal outside the fault diff and re-translates only the diff.  These
tests pin its contract:

* the transformed-module *text* of a delta build equals a full
  ``DpmrCompiler.compile`` rebuild, across all seven diversity variants and
  all seven comparison-policy variants, for both fault kinds;
* every such build is actually served by the delta path (no silent
  fallbacks) and replays a meaningful share of instructions;
* a policy with opaque compile-time state (no ``advance_compile_state``
  override) is refused: the build falls back to whole-function
  re-translation and stays byte-identical;
* ``DPMR_INLINE_RT=0`` (via ``set_inline_runtime``) restores the PR 7
  whole-function behaviour wholesale.
"""

from tests.test_fuzz_differential import build_random_module

from repro.core.policies import AllLoadsPolicy
from repro.eval.variants import Variant, diversity_variants, policy_variants
from repro.faultinject.injector import FAULT_KINDS, enumerate_sites, inject
from repro.ir.printer import format_module
from repro.machine.compile import set_inline_runtime

PRISTINE = build_random_module(7)


def _faulty_builds(pristine, kind, max_sites=2):
    for site in enumerate_sites(pristine, kind)[:max_sites]:
        yield inject(
            pristine.clone(mutable_functions=(site.function,)), site
        )


def _assert_identical(variant, pristine, expect_delta):
    inc = variant.incremental_compiler(pristine)
    checks = 0
    for kind in FAULT_KINDS:
        for faulty in _faulty_builds(pristine, kind):
            delta_text = format_module(inc.compile(faulty).module)
            full_text = format_module(variant.compiler().compile(faulty).module)
            assert delta_text == full_text, (
                f"{variant.name}/{kind}: delta build text diverges from "
                "full rebuild"
            )
            checks += 1
    assert checks > 0
    stats = inc.stats
    if expect_delta:
        assert stats.delta_splices == stats.misses > 0
        assert stats.delta_refusals == 0
        assert stats.replayed_instructions > 0
        assert 0.0 < stats.delta_replay_rate <= 1.0
    else:
        assert stats.delta_splices == 0
        assert stats.delta_refusals == stats.misses > 0
        assert stats.replayed_instructions == 0
    return stats


class TestByteIdentity:
    def test_all_diversity_variants(self):
        for variant in diversity_variants("sds"):
            _assert_identical(variant, PRISTINE, expect_delta=True)

    def test_all_policy_variants(self):
        for variant in policy_variants("sds"):
            _assert_identical(variant, PRISTINE, expect_delta=True)

    def test_mds_design(self):
        for variant in diversity_variants("mds")[:3]:
            _assert_identical(variant, PRISTINE, expect_delta=True)

    def test_replay_dominates_on_resize_faults(self):
        # Resize faults touch one malloc's mirror group; with the rest of
        # the function replayed, the per-site translator work must be a
        # minority of the instructions.
        variant = diversity_variants("sds")[0]
        inc = variant.incremental_compiler(PRISTINE)
        for site in enumerate_sites(PRISTINE, "heap-array-resize"):
            faulty = inject(
                PRISTINE.clone(mutable_functions=(site.function,)), site
            )
            inc.compile(faulty)
        assert inc.stats.delta_splices == inc.stats.misses > 0
        assert inc.stats.delta_replay_rate >= 0.5


class _OpaqueStatefulPolicy(AllLoadsPolicy):
    """Per-site compile state without an ``advance_compile_state``
    override — the delta path cannot fast-forward it and must refuse."""

    name = "opaque-stateful"

    def __init__(self):
        self._state = 0

    def compile_state(self):
        return self._state

    def restore_compile_state(self, state) -> None:
        self._state = state


class TestFallbacks:
    def test_opaque_stateful_policy_refuses_to_delta(self):
        variant = Variant(
            name="opaque", design="sds", policy=_OpaqueStatefulPolicy()
        )
        _assert_identical(variant, PRISTINE, expect_delta=False)

    def test_inline_rt_off_restores_whole_function_path(self):
        variant = diversity_variants("sds")[0]
        prev = set_inline_runtime(False)
        try:
            stats = _assert_identical(variant, PRISTINE, expect_delta=False)
        finally:
            set_inline_runtime(prev)
        assert stats.hit_rate >= 0.0  # stats object stays well-formed

    def test_memo_skips_delta_on_repeat_compiles(self):
        variant = diversity_variants("sds")[0]
        inc = variant.incremental_compiler(PRISTINE)
        site = enumerate_sites(PRISTINE, "heap-array-resize")[0]
        faulty = inject(
            PRISTINE.clone(mutable_functions=(site.function,)), site
        )
        first = format_module(inc.compile(faulty).module)
        splices = inc.stats.delta_splices
        again = format_module(inc.compile(faulty).module)
        assert first == again
        assert inc.stats.delta_splices == splices  # memo hit, no new delta
