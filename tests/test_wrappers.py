"""External function wrapper tests (§2.8, §3.1.5) under SDS and MDS."""

import pytest

from repro.core import DpmrCompiler, get_wrapper_spec, WrapperSpec
from repro.core.wrappers import MemRegionSpec, QsortSpec
from repro.ir import (
    ArrayType,
    FLOAT64,
    INT32,
    INT64,
    INT8,
    ModuleBuilder,
    PointerType,
    VOID,
    VOID_PTR,
    verify_module,
)
from repro.machine import ExitStatus, run_process

DESIGNS = ("sds", "mds")


def _module():
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    mb.declare_external("print_f64", VOID, [FLOAT64])
    mb.declare_external("print_str", VOID, [VOID_PTR])
    mb.declare_external("strlen", INT64, [VOID_PTR])
    mb.declare_external("strcpy", VOID_PTR, [VOID_PTR, VOID_PTR])
    mb.declare_external("strcmp", INT32, [VOID_PTR, VOID_PTR])
    mb.declare_external("atof", FLOAT64, [VOID_PTR])
    mb.declare_external("memcpy", VOID, [VOID_PTR, VOID_PTR, INT64])
    mb.declare_external("qsort", VOID, [VOID_PTR, INT64, INT64, VOID_PTR])
    return mb


def _string_global(mb, name, text):
    data = text.encode() + b"\x00"
    mb.add_global(name, ArrayType(INT8, len(data)), data)
    return mb.module.globals[name].ref()


def _both(module):
    """Run golden + both designs; returns (golden, {design: result})."""
    golden = run_process(module)
    out = {}
    for design in DESIGNS:
        out[design] = DpmrCompiler(design=design).compile(module).run()
    return golden, out


class TestSpecs:
    def test_default_spec_for_unknown_name(self):
        assert isinstance(get_wrapper_spec("whatever"), WrapperSpec)

    def test_qsort_spec_registered(self):
        assert isinstance(get_wrapper_spec("qsort"), QsortSpec)
        assert isinstance(get_wrapper_spec("memcpy"), MemRegionSpec)

    def test_sds_qsort_wrapper_has_leading_sdw_size(self):
        """Fig. 3.3: qsort_efw(size_t sdwSize, base, base_r, base_s, ...)."""
        mb = _module()
        fn, b = mb.define("main", INT32)
        b.ret(b.i32(0))
        out = DpmrCompiler(design="sds").compile(mb.module).module
        w = out.functions["qsort_efw"]
        assert w.type.params[0] == INT64

    def test_mds_qsort_wrapper_has_no_extra(self):
        """§4.3: MDS needs no shadow size for qsort."""
        mb = _module()
        fn, b = mb.define("main", INT32)
        b.ret(b.i32(0))
        out = DpmrCompiler(design="mds").compile(mb.module).module
        w = out.functions["qsort_efw"]
        assert w.type.params[0] != INT64  # first param is the base pointer


class TestStringWrappers:
    def test_strcpy_round_trip(self):
        """Fig. 2.11's wrapper: src checked, dest mirrored, ROP returned."""
        mb = _module()
        s = _string_global(mb, "src", "shadow")
        fn, b = mb.define("main", INT32)
        dest = b.malloc(INT8, b.i64(16))
        rv = b.call("strcpy", [dest, s])
        b.call("print_str", [rv])
        b.call("print_i64", [b.call("strlen", [rv])])
        b.ret(b.i32(0))
        verify_module(mb.module)
        golden, results = _both(mb.module)
        for design, r in results.items():
            assert r.status is ExitStatus.NORMAL, (design, r.detail)
            assert r.output_text == golden.output_text == "shadow6"

    def test_strcmp_wrapper(self):
        mb = _module()
        a = _string_global(mb, "a", "aaa")
        c = _string_global(mb, "c", "aab")
        fn, b = mb.define("main", INT32)
        b.call("print_i64", [b.num_cast(b.call("strcmp", [a, c]), INT64)])
        b.ret(b.i32(0))
        golden, results = _both(mb.module)
        for r in results.values():
            assert r.output_text == golden.output_text == "-1"

    def test_atof_wrapper_parses_prefix(self):
        mb = _module()
        s = _string_global(mb, "f", "2.5e1junk")
        fn, b = mb.define("main", INT32)
        b.call("print_f64", [b.call("atof", [s])])
        b.ret(b.i32(0))
        golden, results = _both(mb.module)
        for r in results.values():
            assert r.output_text == golden.output_text == "25"

    def test_wrapper_detects_corrupted_source(self):
        """An overflow that corrupts a string read by external code is
        caught by the *wrapper's* load check (SDS)."""
        mb = _module()
        fn, b = mb.define("main", INT32)
        buf = b.malloc(INT8, b.i64(8))
        # The victim is a different size than the overflow source, so the
        # app→replica chunk spacing differs and the corruption cannot land
        # pairwise-identically (mixed-size heaps break the symmetry).
        msg = b.malloc(INT8, b.i64(64))
        with b.for_range(b.i64(7)) as i:
            b.store(b.elem_addr(msg, i), b.i8(65))
        b.store(b.elem_addr(msg, b.i64(7)), b.i8(0))
        # Overflow out of buf with offset-varying bytes, far enough to reach
        # the victim string.
        with b.for_range(b.i64(160)) as i:
            byte = b.num_cast(b.add(b.srem(i, b.i64(25)), b.i64(66)), INT8)
            b.store(b.elem_addr(buf, i), byte)
        b.store(b.elem_addr(msg, b.i64(7)), b.i8(0))
        b.call("print_str", [msg])
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = DpmrCompiler(design="sds").compile(mb.module).run()
        assert r.status is ExitStatus.DPMR_DETECTED


class TestMemcpyWrapper:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_copies_data_and_replica(self, design):
        mb = _module()
        fn, b = mb.define("main", INT32)
        src = b.malloc(INT64, b.i64(4))
        dst = b.malloc(INT64, b.i64(4))
        with b.for_range(b.i64(4)) as i:
            b.store(b.elem_addr(src, i), b.mul(i, b.i64(11)))
        b.call("memcpy", [dst, src, b.i64(32)])
        total = b.alloca(INT64)
        b.store(total, b.i64(0))
        with b.for_range(b.i64(4)) as i:
            b.store(total, b.add(b.load(total), b.load(b.elem_addr(dst, i))))
        b.call("print_i64", [b.load(total)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        golden = run_process(mb.module)
        r = DpmrCompiler(design=design).compile(mb.module).run()
        assert r.status is ExitStatus.NORMAL, r.detail
        assert r.output_text == golden.output_text == "66"

    def test_sds_memcpy_copies_shadow_region(self):
        """Copying an array of pointers must move the shadow pairs too, or
        later pointer loads through the copy would lose their ROPs."""
        mb = _module()
        fn, b = mb.define("main", INT32)
        vals = b.malloc(INT64, b.i64(2))
        b.store(b.elem_addr(vals, b.i64(0)), b.i64(123))
        src = b.malloc(PointerType(INT64), b.i64(2))
        dst = b.malloc(PointerType(INT64), b.i64(2))
        p0 = b.elem_addr(vals, b.i64(0))
        b.store(b.elem_addr(src, b.i64(0)), p0)
        b.store(b.elem_addr(src, b.i64(1)), p0)
        b.call("memcpy", [dst, src, b.i64(16)])
        loaded = b.load(b.elem_addr(dst, b.i64(0)))
        b.call("print_i64", [b.load(loaded)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        golden = run_process(mb.module)
        r = DpmrCompiler(design="sds").compile(mb.module).run()
        assert r.status is ExitStatus.NORMAL, r.detail
        assert r.output_text == golden.output_text == "123"


class TestQsortWrapper:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_sorts_and_mirrors(self, design):
        mb = _module()
        cmp, cb = mb.define(
            "cmp_i64", INT32, [PointerType(INT64), PointerType(INT64)], ["a", "b"]
        )
        diff = cb.sub(cb.load(cmp.params[0]), cb.load(cmp.params[1]))
        neg = cb.slt(diff, cb.i64(0))
        with cb.if_then(neg):
            cb.ret(cb.i32(-1))
        pos = cb.sgt(diff, cb.i64(0))
        with cb.if_then(pos):
            cb.ret(cb.i32(1))
        cb.ret(cb.i32(0))

        fn, b = mb.define("main", INT32)
        arr = b.malloc(INT64, b.i64(6))
        for i, v in enumerate([30, 10, 50, 20, 60, 40]):
            b.store(b.elem_addr(arr, b.i64(i)), b.i64(v))
        b.call("qsort", [arr, b.i64(6), b.i64(8), b.func_addr(cmp)])
        with b.for_range(b.i64(6)) as i:
            b.call("print_i64", [b.load(b.elem_addr(arr, i))])
        b.ret(b.i32(0))
        verify_module(mb.module)
        golden = run_process(mb.module)
        assert golden.output_text == "102030405060"
        r = DpmrCompiler(design=design).compile(mb.module).run()
        assert r.status is ExitStatus.NORMAL, (design, r.detail)
        assert r.output_text == golden.output_text
