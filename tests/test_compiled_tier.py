"""The compiled execution tier (repro.machine.compile / codegen).

The tier's contract is *bit-transparency*: a compiled run produces a
record signature-identical to the reference interpreter — same status,
exit code, output, cycle count, instruction count, fault activations, and
detail — across every variant configuration and both fault kinds, for
normal exits, crashes, detections, and timeouts alike.  These tests pin
that contract plus the tier's selection rules (observability always wins),
its fallbacks (uncompilable functions, non-default memory geometry), the
content-addressed code cache, and the eval-layer surface (``DPMR_COMPILE``,
manifest engine/codegen fields, store-fingerprint transparency).
"""

import pytest

from repro.apps import app_factory
from repro.eval.api import run
from repro.eval.config import ExecConfig
from repro.eval.experiment import WorkloadHarness
from repro.eval.store import exec_fingerprint
from repro.eval.variants import Variant, diversity_variants, policy_variants
from repro.ir import INT32, INT64, VOID, ModuleBuilder
from repro.machine.compile import (
    CODEGEN_STATS,
    codegen_stats,
    compiled_program_for,
    content_cache_key,
)
from repro.machine.interpreter import Machine
from repro.machine.memory import Memory
from repro.machine.process import ExitStatus, run_process
from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest
from repro.obs.tracer import CollectingTracer


def _signature(result):
    return (
        result.status,
        result.exit_code,
        result.output_text,
        result.cycles,
        result.instructions,
        tuple(sorted(result.fault_activations.items())),
        result.detail,
    )


def _tiny_module():
    mb = ModuleBuilder("tiny")
    mb.declare_external("print_i64", VOID, [INT64])
    _, b = mb.define("main", INT32)
    acc = b.alloca(INT64)
    b.store(acc, b.i64(0))
    with b.for_range(b.i64(10)) as i:
        b.store(acc, b.add(b.load(acc), b.mul(i, i)))
    b.call("print_i64", [b.load(acc)])
    b.ret(b.i32(0))
    return mb.module


# -- engine selection ----------------------------------------------------


def test_compiled_machine_binds_compiled_exec():
    module = _tiny_module()
    plain = Machine(module)
    assert plain._exec.__func__ is Machine._exec_function
    m = Machine(module, compiled=True)
    assert m._exec.__func__ is Machine._exec_function_compiled


def test_observability_forces_instrumented_interpreter():
    # Tracing or counters must win over the compiled tier: observation
    # semantics (per-step events, opcode counters) only exist there.
    module = _tiny_module()
    m = Machine(module, compiled=True, counters=True)
    assert m._exec.__func__ is Machine._exec_function_instrumented
    m = Machine(module, compiled=True, tracer=CollectingTracer())
    assert m._exec.__func__ is Machine._exec_function_instrumented


def test_non_default_memory_geometry_falls_back_to_interpreter():
    # The compiled program folds global addresses for the *default* layout;
    # a machine whose globals live elsewhere must refuse the whole program.
    from repro.machine.memory import DEFAULT_GLOBALS_SIZE, GLOBALS_BASE, Segment

    mb = ModuleBuilder("geo")
    mb.add_global("counter", INT64, 7)
    _, b = mb.define("main", INT32)
    g = mb.module.globals["counter"].ref()
    b.store(g, b.i64(9))
    b.ret(b.i32(0))
    module = mb.module
    assert Machine(module, compiled=True)._exec.__func__ is (
        Machine._exec_function_compiled
    )
    shifted = Memory()
    shifted.globals = Segment("globals", GLOBALS_BASE + 0x100, DEFAULT_GLOBALS_SIZE)
    m = Machine(module, memory=shifted, compiled=True)
    assert m._exec.__func__ is Machine._exec_function


def test_shim_fallback_for_uncompilable_function():
    # A function the generator rejects (duplicate parameter names defeat
    # the register→local mapping) gets no compiled body; it runs through
    # the interpreter while its callers stay compiled, bit-identically.
    mb = ModuleBuilder("mixed")
    mb.declare_external("print_i64", VOID, [INT64])
    helper, fb = mb.define(
        "helper", INT64, [INT64, INT64], param_names=["x", "x"]
    )
    fb.ret(fb.add(helper.params[1], fb.i64(5)))
    _, b = mb.define("main", INT32)
    b.call("print_i64", [b.call("helper", [b.i64(37), b.i64(37)])])
    b.ret(b.i32(0))
    module = mb.module
    program = compiled_program_for(module)
    assert "helper" not in program.functions
    assert "main" in program.functions
    interp = run_process(module)
    comp = run_process(module, compiled=True)
    assert _signature(interp) == _signature(comp)
    assert "42" in interp.output_text


# -- bit-identity across the evaluation matrix ---------------------------


@pytest.mark.parametrize("kind", ["heap-array-resize", "immediate-free"])
def test_campaign_signatures_identical_both_kinds_all_variants(kind):
    harness = WorkloadHarness("mcf", app_factory("mcf", 1))
    variants = diversity_variants("sds") + policy_variants("sds")
    base = run(
        harness,
        variants,
        kind=kind,
        config=ExecConfig(compiled=False),
        max_sites=2,
    )
    comp = run(
        harness, variants, kind=kind, config=ExecConfig(compiled=True), max_sites=2
    )
    assert len(base.records) == len(comp.records) > 0
    assert [r.signature() for r in base.records] == [
        r.signature() for r in comp.records
    ]
    assert base.manifest.engine == "interp"
    assert comp.manifest.engine == "compiled"


def test_timeout_identity_sweep():
    # Batched cycle accounting must time out at exactly the same cycle
    # stamp (and detail string) as the per-instruction interpreter, at
    # any budget — including ones that land mid-batch.
    module = app_factory("mcf", 1)()
    full = run_process(module)
    assert full.status is ExitStatus.NORMAL
    for frac in (0.1, 0.33, 0.5, 0.9, 0.999):
        budget = max(1, int(full.cycles * frac))
        interp = run_process(module, max_cycles=budget)
        comp = run_process(module, max_cycles=budget, compiled=True)
        assert _signature(interp) == _signature(comp), budget
        assert interp.status is ExitStatus.TIMEOUT


# -- content-addressed code cache ----------------------------------------


def test_content_cache_key_shape_is_shared_with_incremental_compiler():
    assert content_cache_key("f", "abc123") == ("f", "abc123")


def test_codegen_cache_hits_grow_on_recompilation():
    # The marker constant makes this program's generated source unique to
    # this test, so the first compile is a guaranteed cache miss even when
    # other tests warmed the process-wide content cache.
    def make():
        mb = ModuleBuilder("cache-probe")
        mb.declare_external("print_i64", VOID, [INT64])
        _, b = mb.define("main", INT32)
        b.call("print_i64", [b.i64(987654321)])
        b.ret(b.i32(0))
        return mb.module

    before = codegen_stats()
    run_process(make(), compiled=True)
    mid = codegen_stats()
    assert mid["misses"] > before["misses"]
    # A structurally identical module (fresh objects, same text) must hit
    # the content-addressed cache: no new misses for its functions.
    run_process(make(), compiled=True)
    after = codegen_stats()
    assert after["hits"] > mid["hits"]
    assert after["misses"] == mid["misses"]
    assert set(CODEGEN_STATS) == {
        "hits", "misses", "delta_hits", "delta_builds", "persistent_hits",
        "stamp_hits", "program_hits",
    }


# -- eval-layer surface --------------------------------------------------


def test_dpmr_compile_env_parsing():
    # Compiled is the default engine; DPMR_COMPILE=0 is the opt-out.
    assert ExecConfig.from_env({}).compiled is True
    assert ExecConfig.from_env({"DPMR_COMPILE": "1"}).compiled is True
    assert ExecConfig.from_env({"DPMR_COMPILE": "false"}).compiled is False
    assert ExecConfig.from_env({"DPMR_COMPILE": "0"}).compiled is False
    with pytest.raises(ValueError):
        ExecConfig.from_env({"DPMR_COMPILE": "maybe"})


def test_exec_fingerprint_is_compiled_transparent():
    # The compiled tier is bit-transparent, so flipping it must not
    # invalidate the persistent result store.
    assert exec_fingerprint(ExecConfig(compiled=False)) == exec_fingerprint(
        ExecConfig(compiled=True)
    )


def test_manifest_records_engine_and_codegen_traffic():
    assert MANIFEST_SCHEMA == 5
    harness = WorkloadHarness("mcf", app_factory("mcf", 1))
    variants = [Variant(name="sds", design="sds")]
    res = run(
        harness,
        variants,
        kind="heap-array-resize",
        config=ExecConfig(compiled=True),
        max_sites=2,
    )
    m = res.manifest
    assert m.engine == "compiled"
    assert m.codegen_hits + m.codegen_misses > 0
    # Round-trips through the JSON shape.
    again = RunManifest.from_dict(m.to_dict())
    assert again.engine == "compiled"
    assert again.codegen_hits == m.codegen_hits
    assert again.codegen_misses == m.codegen_misses
    # Observability downgrades the engine and zeroes codegen traffic.
    res_obs = run(
        harness,
        variants,
        kind="heap-array-resize",
        config=ExecConfig(compiled=True, counters=True),
        max_sites=1,
    )
    assert res_obs.manifest.engine == "interp"
    assert res_obs.manifest.codegen_hits == res_obs.manifest.codegen_misses == 0


def test_manifest_report_renders_engine_line():
    from repro.eval.report import manifest_section

    harness = WorkloadHarness("mcf", app_factory("mcf", 1))
    variants = [Variant(name="sds", design="sds")]
    res = run(
        harness,
        variants,
        kind="heap-array-resize",
        config=ExecConfig(compiled=True),
        max_sites=1,
    )
    text = manifest_section(res.manifest)
    assert "engine: compiled (codegen hits=" in text
    res_i = run(
        harness,
        variants,
        kind="heap-array-resize",
        config=ExecConfig(compiled=False),
        max_sites=1,
    )
    assert "engine: interp" in manifest_section(res_i.manifest)


def test_observability_with_compiled_knob_is_record_identical():
    # DPMR_COMPILE plus counters: instrumented interpreter runs, records
    # (minus counters) still match a bare compiled campaign.
    harness = WorkloadHarness("mcf", app_factory("mcf", 1))
    variants = [Variant(name="sds", design="sds")]
    bare = run(
        harness,
        variants,
        kind="immediate-free",
        config=ExecConfig(compiled=True),
        max_sites=2,
    )
    obs = run(
        harness,
        variants,
        kind="immediate-free",
        config=ExecConfig(compiled=True, counters=True),
        max_sites=2,
    )
    assert [r.signature() for r in bare.records] == [
        r.signature() for r in obs.records
    ]
    assert all(r.result.counters is not None for r in obs.records)
    assert all(r.result.counters is None for r in bare.records)
