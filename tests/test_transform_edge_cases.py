"""Transformation edge cases: function pointers in memory, recursion with
pointer returns, unions, deep call chains, and struct-of-struct layouts."""

import pytest

from repro.core import DpmrCompiler
from repro.ir import (
    ArrayType,
    FLOAT64,
    INT32,
    INT64,
    ModuleBuilder,
    PointerType,
    StructType,
    UnionType,
    VOID,
    verify_module,
)
from repro.machine import ExitStatus, run_process

DESIGNS = ("sds", "mds")


def _check_equivalence(build_module, designs=DESIGNS):
    golden = run_process(build_module())
    assert golden.status is ExitStatus.NORMAL, golden.detail
    for design in designs:
        r = DpmrCompiler(design=design).compile(build_module()).run()
        assert r.status is ExitStatus.NORMAL, (design, r.detail)
        assert r.output_text == golden.output_text, design
    return golden


class TestFunctionPointersInMemory:
    """Function pointers are stored/loaded like any pointer; their ROP is
    the same address and their NSOP is null (Table 2.6, address of a
    function)."""

    def _build(self):
        mb = ModuleBuilder("fnptr")
        mb.declare_external("print_i64", VOID, [INT64])
        inc, b = mb.define("inc", INT64, [INT64], ["x"])
        b.ret(b.add(inc.params[0], b.i64(1)))
        dbl, b = mb.define("dbl", INT64, [INT64], ["x"])
        b.ret(b.mul(dbl.params[0], b.i64(2)))
        fn, b = mb.define("main", INT32)
        slot = b.alloca(PointerType(inc.type))
        b.store(slot, b.func_addr(inc))
        b.call("print_i64", [b.call(b.load(slot), [b.i64(41)])])
        b.store(slot, b.func_addr(dbl))
        b.call("print_i64", [b.call(b.load(slot), [b.i64(21)])])
        b.ret(b.i32(0))
        verify_module(mb.module)
        return mb.module

    def test_indirect_calls_through_loaded_pointers(self):
        golden = _check_equivalence(self._build)
        assert golden.output_text == "4242"

    def test_function_pointer_table_on_heap(self):
        def build():
            mb = ModuleBuilder("fntable")
            mb.declare_external("print_i64", VOID, [INT64])
            sq, b = mb.define("sq", INT64, [INT64], ["x"])
            b.ret(b.mul(sq.params[0], sq.params[0]))
            ng, b = mb.define("ng", INT64, [INT64], ["x"])
            b.ret(b.sub(b.i64(0), ng.params[0]))
            fpt = PointerType(sq.type)
            fn, b = mb.define("main", INT32)
            table = b.malloc(fpt, b.i64(2))
            b.store(b.elem_addr(table, b.i64(0)), b.func_addr(sq))
            b.store(b.elem_addr(table, b.i64(1)), b.func_addr(ng))
            with b.for_range(b.i64(2)) as i:
                f = b.load(b.elem_addr(table, i))
                b.call("print_i64", [b.call(f, [b.i64(7)])])
            b.free(table)
            b.ret(b.i32(0))
            verify_module(mb.module)
            return mb.module

        golden = _check_equivalence(build)
        assert golden.output_text == "49-7"


class TestRecursionWithPointerReturns:
    def test_recursive_list_build_and_sum(self):
        """A recursive constructor returning pointers exercises the rvSop /
        rvRopPtr protocol through arbitrarily deep call chains."""

        def build():
            node = StructType.opaque("rnode")
            node.set_fields([INT64, PointerType(node)])
            np_ = PointerType(node)
            mb = ModuleBuilder("recbuild")
            mb.declare_external("print_i64", VOID, [INT64])
            mk, b = mb.define("mk", np_, [INT64], ["n"])
            done = b.sle(mk.params[0], b.i64(0))
            with b.if_then(done):
                b.ret(b.null(node))
            rest = b.call("mk", [b.sub(mk.params[0], b.i64(1))])
            cell = b.malloc(node)
            b.store(b.field_addr(cell, 0), mk.params[0])
            b.store(b.field_addr(cell, 1), rest)
            b.ret(cell)

            total, b = mb.define("total", INT64, [np_], ["p"])
            isnull = b.eq(total.params[0], b.null(node))
            with b.if_then(isnull):
                b.ret(b.i64(0))
            v = b.load(b.field_addr(total.params[0], 0))
            nxt = b.load(b.field_addr(total.params[0], 1))
            rest = b.call("total", [nxt])
            b.ret(b.add(v, rest))

            fn, b = mb.define("main", INT32)
            head = b.call("mk", [b.i64(10)])
            b.call("print_i64", [b.call("total", [head])])
            b.ret(b.i32(0))
            verify_module(mb.module)
            return mb.module

        golden = _check_equivalence(build)
        assert golden.output_text == "55"


class TestUnions:
    def test_union_of_scalars_replicated(self):
        def build():
            u = UnionType([INT64, FLOAT64])
            mb = ModuleBuilder("union")
            mb.declare_external("print_i64", VOID, [INT64])
            fn, b = mb.define("main", INT32)
            slot = b.alloca(u)
            as_int = b.ptr_cast(slot, INT64)
            b.store(as_int, b.i64(1234))
            b.call("print_i64", [b.load(as_int)])
            b.ret(b.i32(0))
            verify_module(mb.module)
            return mb.module

        golden = _check_equivalence(build)
        assert golden.output_text == "1234"


class TestNestedAggregates:
    def test_struct_of_struct_field_addressing(self):
        def build():
            inner = StructType([INT64, PointerType(INT64)])
            outer = StructType([INT32, inner, FLOAT64])
            mb = ModuleBuilder("nested")
            mb.declare_external("print_i64", VOID, [INT64])
            fn, b = mb.define("main", INT32)
            box = b.malloc(outer)
            mid = b.field_addr(box, 1)
            b.store(b.field_addr(mid, 0), b.i64(88))
            target = b.alloca(INT64)
            b.store(target, b.i64(5))
            b.store(b.field_addr(mid, 1), target)
            loaded_ptr = b.load(b.field_addr(mid, 1))
            total = b.add(b.load(b.field_addr(mid, 0)), b.load(loaded_ptr))
            b.call("print_i64", [total])
            b.free(box)
            b.ret(b.i32(0))
            verify_module(mb.module)
            return mb.module

        golden = _check_equivalence(build)
        assert golden.output_text == "93"

    def test_array_of_structs_with_pointers(self):
        def build():
            pair = StructType([PointerType(INT64), INT64])
            mb = ModuleBuilder("aos")
            mb.declare_external("print_i64", VOID, [INT64])
            fn, b = mb.define("main", INT32)
            vals = b.malloc(INT64, b.i64(3))
            arr = b.malloc(pair, b.i64(3))
            with b.for_range(b.i64(3)) as i:
                b.store(b.elem_addr(vals, i), b.mul(i, b.i64(4)))
                entry = b.elem_addr(arr, i)
                b.store(b.field_addr(entry, 0), b.elem_addr(vals, i))
                b.store(b.field_addr(entry, 1), i)
            acc = b.alloca(INT64)
            b.store(acc, b.i64(0))
            with b.for_range(b.i64(3)) as i:
                entry = b.elem_addr(arr, i)
                p = b.load(b.field_addr(entry, 0))
                k = b.load(b.field_addr(entry, 1))
                b.store(acc, b.add(b.load(acc), b.add(b.load(p), k)))
            b.call("print_i64", [b.load(acc)])
            b.free(vals)
            b.free(arr)
            b.ret(b.i32(0))
            verify_module(mb.module)
            return mb.module

        golden = _check_equivalence(build)
        assert golden.output_text == "15"


class TestDeepCallChains:
    def test_pointer_threaded_through_many_frames(self):
        def build():
            mb = ModuleBuilder("deep")
            mb.declare_external("print_i64", VOID, [INT64])
            ptr_t = PointerType(INT64)
            bump, b = mb.define("bump", INT64, [ptr_t, INT64], ["p", "d"])
            depth = bump.params[1]
            done = b.sle(depth, b.i64(0))
            with b.if_then(done):
                b.ret(b.load(bump.params[0]))
            b.store(bump.params[0], b.add(b.load(bump.params[0]), b.i64(1)))
            r = b.call("bump", [bump.params[0], b.sub(depth, b.i64(1))])
            b.ret(r)
            fn, b = mb.define("main", INT32)
            cell = b.alloca(INT64)
            b.store(cell, b.i64(0))
            b.call("print_i64", [b.call("bump", [cell, b.i64(30)])])
            b.ret(b.i32(0))
            verify_module(mb.module)
            return mb.module

        golden = _check_equivalence(build)
        assert golden.output_text == "30"
