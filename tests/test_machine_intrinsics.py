"""Base intrinsic ("libc") tests — the external code of §2.8, untransformed."""

import pytest

from repro.ir import (
    ArrayType,
    FLOAT64,
    FunctionType,
    INT32,
    INT64,
    INT8,
    ModuleBuilder,
    PointerType,
    VOID,
    VOID_PTR,
    verify_module,
)
from repro.machine import ExitStatus, run_process


def _module():
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    mb.declare_external("print_f64", VOID, [FLOAT64])
    mb.declare_external("print_str", VOID, [VOID_PTR])
    mb.declare_external("strlen", INT64, [VOID_PTR])
    mb.declare_external("strcpy", VOID_PTR, [VOID_PTR, VOID_PTR])
    mb.declare_external("strcmp", INT32, [VOID_PTR, VOID_PTR])
    mb.declare_external("atoi", INT64, [VOID_PTR])
    mb.declare_external("atof", FLOAT64, [VOID_PTR])
    mb.declare_external("memcpy", VOID, [VOID_PTR, VOID_PTR, INT64])
    mb.declare_external("memset", VOID, [VOID_PTR, INT64, INT64])
    mb.declare_external("exit", VOID, [INT32])
    mb.declare_external("app_error", VOID, [INT32])
    return mb


def _string_global(mb, name, text):
    data = text.encode() + b"\x00"
    mb.add_global(name, ArrayType(INT8, len(data)), data)
    return mb.module.globals[name].ref()


def test_strlen_and_print_str():
    mb = _module()
    s = _string_global(mb, "msg", "hello")
    fn, b = mb.define("main", INT32)
    b.call("print_str", [s])
    b.call("print_i64", [b.call("strlen", [s])])
    b.ret(b.i32(0))
    verify_module(mb.module)
    r = run_process(mb.module)
    assert r.output_text == "hello5"


def test_strcpy_copies_and_returns_dest():
    mb = _module()
    s = _string_global(mb, "src", "dpmr")
    fn, b = mb.define("main", INT32)
    dest = b.malloc(INT8, b.i64(16))
    rv = b.call("strcpy", [dest, s])
    b.call("print_str", [rv])
    b.ret(b.i32(0))
    verify_module(mb.module)
    assert run_process(mb.module).output_text == "dpmr"


def test_strcmp_ordering():
    mb = _module()
    a = _string_global(mb, "a", "apple")
    c = _string_global(mb, "c", "cherry")
    fn, b = mb.define("main", INT32)
    lt = b.call("strcmp", [a, c])
    eq = b.call("strcmp", [a, a])
    gt = b.call("strcmp", [c, a])
    for v in (lt, eq, gt):
        b.call("print_i64", [b.num_cast(v, INT64)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    assert run_process(mb.module).output_text == "-101"


def test_atoi_and_atof_prefix_parsing():
    mb = _module()
    s1 = _string_global(mb, "n1", "  -42abc")
    s2 = _string_global(mb, "n2", "3.5xyz")
    fn, b = mb.define("main", INT32)
    b.call("print_i64", [b.call("atoi", [s1])])
    b.call("print_f64", [b.call("atof", [s2])])
    b.ret(b.i32(0))
    verify_module(mb.module)
    assert run_process(mb.module).output_text == "-423.5"


def test_memcpy_and_memset():
    mb = _module()
    fn, b = mb.define("main", INT32)
    a = b.malloc(INT64, b.i64(4))
    c = b.malloc(INT64, b.i64(4))
    with b.for_range(b.i64(4)) as i:
        b.store(b.elem_addr(a, i), b.add(i, b.i64(1)))
    b.call("memcpy", [c, a, b.i64(32)])
    b.call("memset", [a, b.i64(0), b.i64(32)])
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(4)) as i:
        both = b.add(b.load(b.elem_addr(a, i)), b.load(b.elem_addr(c, i)))
        b.store(total, b.add(b.load(total), both))
    b.call("print_i64", [b.load(total)])  # 0 + (1+2+3+4)
    b.ret(b.i32(0))
    verify_module(mb.module)
    assert run_process(mb.module).output_text == "10"


def test_qsort_with_callback():
    mb = _module()
    mb.declare_external(
        "qsort", VOID, [VOID_PTR, INT64, INT64, VOID_PTR]
    )
    cmp, cb = mb.define(
        "cmp_i64", INT32, [PointerType(INT64), PointerType(INT64)], ["a", "b"]
    )
    av = cb.load(cmp.params[0])
    bv = cb.load(cmp.params[1])
    lt = cb.slt(av, bv)
    with cb.if_then(lt):
        cb.ret(cb.i32(-1))
    gt = cb.sgt(av, bv)
    with cb.if_then(gt):
        cb.ret(cb.i32(1))
    cb.ret(cb.i32(0))

    fn, b = mb.define("main", INT32)
    arr = b.malloc(INT64, b.i64(5))
    for i, v in enumerate([5, 3, 9, 1, 7]):
        b.store(b.elem_addr(arr, b.i64(i)), b.i64(v))
    fp = b.func_addr(cmp)
    b.call("qsort", [arr, b.i64(5), b.i64(8), fp])
    with b.for_range(b.i64(5)) as i:
        b.call("print_i64", [b.load(b.elem_addr(arr, i))])
    b.ret(b.i32(0))
    verify_module(mb.module)
    assert run_process(mb.module).output_text == "13579"


def test_exit_sets_code():
    mb = _module()
    fn, b = mb.define("main", INT32)
    b.call("exit", [b.i32(3)])
    b.unreachable()
    verify_module(mb.module)
    r = run_process(mb.module)
    assert r.status is ExitStatus.NORMAL
    assert r.exit_code == 3


def test_app_error_is_distinct_status():
    mb = _module()
    fn, b = mb.define("main", INT32)
    b.call("app_error", [b.i32(9)])
    b.unreachable()
    verify_module(mb.module)
    r = run_process(mb.module)
    assert r.status is ExitStatus.APP_ERROR
    assert r.exit_code == 9


def test_unresolved_external_crashes():
    mb = ModuleBuilder()
    mb.declare_external("no_such_fn", VOID, [])
    fn, b = mb.define("main", INT32)
    b.call("no_such_fn", [])
    b.ret(b.i32(0))
    verify_module(mb.module)
    r = run_process(mb.module)
    assert r.status is ExitStatus.CRASH
    assert "unresolved" in r.detail
