"""Differential fuzzing: golden vs SDS vs MDS on random fault-free programs.

A seeded generator emits small random IR programs (heap arrays, loops,
arithmetic, conditionals, frees and reallocation) and each one runs three
ways: plain interpretation (golden), single-data-section DPMR, and
multi-data-section DPMR with heap rearrangement.  With no fault injected,
DPMR must be invisible: zero false detections, a normal exit, and output
byte-identical to golden — for every program, across ≥200 seeds per
design.  Programs are tiny (arrays ≤12 elements, loops ≤8 iterations) so
the whole sweep stays within a test-suite budget.

The compiled execution tier (``repro.machine.compile``) joins as a third
engine: every program additionally runs interpreted *and* compiled, and
the full record signature (status, exit code, output, cycles,
instructions, fault activations, detail) must match exactly.  The
runtime-inlining pass adds a fourth engine configuration: every *faulty*
program (both fault kinds) also runs compiled with DPMR hooks specialized
into the generated source, under the same full-signature equality.
"""

import random

import pytest

from repro.core.diversity import PadMalloc, RearrangeHeap, ZeroBeforeFree
from repro.eval.variants import Variant
from repro.faultinject.injector import FAULT_KINDS, enumerate_sites, inject
from repro.ir import (
    INT32,
    INT64,
    VOID,
    ModuleBuilder,
    verify_module,
)
from repro.machine.process import ExitStatus, run_process

N_SEEDS = 200
MAX_ELEMS = 12
MAX_ITERS = 8


def build_random_module(seed):
    """One deterministic random program per seed.

    Generated programs are fault-free by construction: every index stays
    in bounds, no pointer is used after free, and every loop is bounded.
    """
    rng = random.Random(seed)
    mb = ModuleBuilder(f"fuzz{seed}")
    mb.declare_external("print_i64", VOID, [INT64])
    _, b = mb.define("main", INT32)

    total = b.alloca(INT64)
    b.store(total, b.i64(rng.randrange(100)))

    def bump_total(value):
        b.store(total, b.add(b.load(total), value))

    arrays = []  # (pointer, n_elems), live heap arrays

    def new_array():
        n = rng.randint(1, MAX_ELEMS)
        arr = b.malloc(INT64, b.i64(n))
        scale, bias = rng.randrange(1, 5), rng.randrange(50)
        with b.for_range(b.i64(n)) as i:
            b.store(b.elem_addr(arr, i), b.add(b.mul(i, b.i64(scale)), b.i64(bias)))
        arrays.append((arr, n))

    for _ in range(rng.randint(1, 3)):
        new_array()

    for _ in range(rng.randint(2, 7)):
        kind = rng.choice(["sum", "rmw", "cond", "while", "point", "churn"])
        arr, n = rng.choice(arrays)
        if kind == "sum":
            with b.for_range(b.i64(n)) as i:
                bump_total(b.load(b.elem_addr(arr, i)))
        elif kind == "rmw":
            c = b.i64(rng.randrange(1, 7))
            with b.for_range(b.i64(n)) as i:
                slot = b.elem_addr(arr, i)
                b.store(slot, b.add(b.mul(b.load(slot), c), i))
        elif kind == "cond":
            k = rng.randrange(n)
            probe = b.load(b.elem_addr(arr, b.i64(k)))
            cond = b.slt(probe, b.i64(rng.randrange(200)))
            with b.if_else(cond) as arms:
                with arms.then():
                    bump_total(probe)
                with arms.otherwise():
                    bump_total(b.sub(b.i64(0), probe))
        elif kind == "while":
            bound = rng.randint(1, MAX_ITERS)
            counter = b.alloca(INT64)
            b.store(counter, b.i64(0))
            with b.while_loop(lambda bb: bb.slt(bb.load(counter), bb.i64(bound))):
                idx = b.srem(b.load(counter), b.i64(n))
                bump_total(b.load(b.elem_addr(arr, idx)))
                b.store(counter, b.add(b.load(counter), b.i64(1)))
        elif kind == "point":
            k = rng.randrange(n)
            bump_total(b.mul(b.load(b.elem_addr(arr, b.i64(k))), b.i64(2)))
        elif kind == "churn" and len(arrays) > 1:
            # Free one array and allocate a replacement: exercises the
            # free list / heap layout divergence between replicas.
            victim = rng.randrange(len(arrays))
            ptr, _ = arrays.pop(victim)
            b.free(ptr)
            new_array()

    for ptr, _ in arrays:
        if rng.random() < 0.5:
            b.free(ptr)

    b.call("print_i64", [b.load(total)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def sds_variant():
    return Variant(name="sds", design="sds")


def mds_variant():
    return Variant(name="mds", design="mds", diversity=RearrangeHeap())


@pytest.mark.parametrize(
    "make_variant", [sds_variant, mds_variant], ids=["sds", "mds"]
)
def test_no_false_detections_across_random_programs(make_variant):
    variant = make_variant()
    mismatches = []
    for seed in range(N_SEEDS):
        module = build_random_module(seed)
        golden = run_process(module)
        assert golden.status is ExitStatus.NORMAL, (seed, golden.detail)
        assert golden.exit_code == 0
        result = variant.compile(module).run(max_cycles=golden.cycles * 50)
        if result.status is not ExitStatus.NORMAL:
            mismatches.append((seed, "status", result.status, result.detail))
        elif result.exit_code != 0:
            mismatches.append((seed, "exit", result.exit_code))
        elif result.output_text != golden.output_text:
            mismatches.append(
                (seed, "output", result.output_text, golden.output_text)
            )
    assert not mismatches, (
        f"{len(mismatches)}/{N_SEEDS} false divergences under "
        f"{variant.name}: {mismatches[:5]}"
    )


def _run_signature(result):
    """Everything a record's signature would carry for one run."""
    return (
        result.status,
        result.exit_code,
        result.output_text,
        result.cycles,
        result.instructions,
        tuple(sorted(result.fault_activations.items())),
        result.detail,
    )


def test_compiled_tier_bit_identical_across_random_programs():
    """The compiled engine is a third differential engine: for every random
    program, interpreted and compiled execution must agree bit-for-bit —
    golden, SDS, and MDS alike (cycles, instructions, and activations
    included, not just output)."""
    divergences = []
    for seed in range(N_SEEDS):
        module = build_random_module(seed)
        golden_i = run_process(module)
        golden_c = run_process(module, compiled=True)
        if _run_signature(golden_i) != _run_signature(golden_c):
            divergences.append((seed, "golden", golden_i, golden_c))
            continue
        budget = golden_i.cycles * 50
        for make_variant in (sds_variant, mds_variant):
            variant = make_variant()
            build = variant.compile(module)
            interp = build.run(max_cycles=budget)
            comp = build.run(max_cycles=budget, compiled=True)
            if _run_signature(interp) != _run_signature(comp):
                divergences.append((seed, variant.name, interp, comp))
    assert not divergences, (
        f"{len(divergences)}/{N_SEEDS} interpreter/compiled divergences: "
        f"{divergences[:3]}"
    )


N_FAULTY_SEEDS = 100


def test_faulty_programs_bit_identical_across_engines():
    """Differential fuzzing with faults in: for both fault kinds and every
    random program, the interpreter, the compiled tier, and the compiled
    tier with inlined DPMR runtime must agree on the full run signature —
    detections, crashes, activations, cycle counts and all.  The variant
    set covers every inline specialization shape: plain malloc/free,
    padded malloc, method free (zero-before-free) and method malloc
    (rearrange-heap, MDS)."""
    from repro.machine.compile import set_inline_runtime

    variants = [
        sds_variant,
        mds_variant,
        lambda: Variant(name="sds-pad", design="sds", diversity=PadMalloc(32)),
        lambda: Variant(name="sds-zbf", design="sds", diversity=ZeroBeforeFree()),
    ]
    budget = 250_000
    divergences = []
    checked = 0
    for seed in range(N_FAULTY_SEEDS):
        pristine = build_random_module(seed)
        for kind in FAULT_KINDS:
            for site in enumerate_sites(pristine, kind)[:1]:
                faulty = inject(
                    pristine.clone(mutable_functions=(site.function,)), site
                )
                for make_variant in variants:
                    variant = make_variant()
                    build = variant.compile(faulty)
                    interp = build.run(max_cycles=budget)
                    prev = set_inline_runtime(False)
                    try:
                        plain = build.run(max_cycles=budget, compiled=True)
                        set_inline_runtime(True)
                        inlined = build.run(max_cycles=budget, compiled=True)
                    finally:
                        set_inline_runtime(prev)
                    checked += 1
                    want = _run_signature(interp)
                    if want != _run_signature(plain):
                        divergences.append(
                            (seed, kind, variant.name, "compiled", interp, plain)
                        )
                    if want != _run_signature(inlined):
                        divergences.append(
                            (seed, kind, variant.name, "inlined", interp, inlined)
                        )
    assert checked >= N_FAULTY_SEEDS
    assert not divergences, (
        f"{len(divergences)}/{checked} engine divergences on faulty "
        f"programs: {divergences[:3]}"
    )


def test_generator_is_deterministic_and_diverse():
    # Same seed, same program text; different seeds mostly differ —
    # otherwise the 200-seed sweep silently re-tests one program.
    from repro.ir.printer import format_module

    texts = [format_module(build_random_module(s)) for s in range(40)]
    assert texts[0] == format_module(build_random_module(0))
    assert len(set(texts)) > 30
