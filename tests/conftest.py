"""Shared fixtures: small programs reused across the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Process runs build a whole simulated machine; wall-clock per example is
# dominated by setup, so the default 200ms deadline is meaningless here.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.ir import (
    INT32,
    INT64,
    VOID,
    ModuleBuilder,
    PointerType,
    StructType,
    verify_module,
)


def make_linked_list_types():
    """The paper's running example: ``struct LinkedList { int32; LL* }``."""
    ll = StructType.opaque("LinkedList")
    ll.set_fields([INT32, PointerType(ll)])
    return ll


def build_linked_list_module(n_nodes: int = 5):
    """createNode/getSum/main from Figs. 2.9/2.10."""
    ll = make_linked_list_types()
    llp = PointerType(ll)
    mb = ModuleBuilder("linkedlist")
    mb.declare_external("print_i64", VOID, [INT64])

    cn, b = mb.define("createNode", llp, [INT32, llp], ["data", "last"])
    n = b.malloc(ll, hint="n")
    b.store(b.field_addr(n, 0), cn.params[0])
    b.store(b.field_addr(n, 1), b.null(ll))
    has_last = b.ne(cn.params[1], b.null(ll))
    with b.if_then(has_last):
        b.store(b.field_addr(cn.params[1], 1), n)
    b.ret(n)

    gs, b = mb.define("getSum", INT32, [llp], ["n"])
    cur = b.alloca(llp)
    b.store(cur, gs.params[0])
    total = b.alloca(INT32)
    b.store(total, b.i32(0))
    with b.while_loop(lambda bb: bb.ne(bb.load(cur), bb.null(ll))):
        c = b.load(cur)
        v = b.load(b.field_addr(c, 0))
        b.store(total, b.add(b.load(total), v))
        b.store(cur, b.load(b.field_addr(c, 1)))
    b.ret(b.load(total))

    mfn, b = mb.define("main", INT32)
    head = b.alloca(llp)
    b.store(head, b.null(ll))
    tail = b.alloca(llp)
    b.store(tail, b.null(ll))
    with b.for_range(b.i64(n_nodes)) as i:
        node = b.call("createNode", [b.num_cast(i, INT32), b.load(tail)])
        b.store(tail, node)
        empty = b.eq(b.load(head), b.null(ll))
        with b.if_then(empty):
            b.store(head, node)
    s = b.call("getSum", [b.load(head)])
    b.call("print_i64", [b.num_cast(s, INT64)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def build_sum_module(n: int = 10):
    """A minimal array-sum program (one heap array, one output)."""
    mb = ModuleBuilder("sum")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    arr = b.malloc(INT64, b.i64(n))
    with b.for_range(b.i64(n)) as i:
        b.store(b.elem_addr(arr, i), b.mul(i, i))
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(n)) as i:
        b.store(total, b.add(b.load(total), b.load(b.elem_addr(arr, i))))
    b.call("print_i64", [b.load(total)])
    b.free(arr)
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def build_overflow_module(n_alloc: int, n_write: int):
    """Writes ``n_write`` elements into an ``n_alloc``-element heap array,
    then sums a victim array allocated right after it."""
    mb = ModuleBuilder("overflow")
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    a = b.malloc(INT64, b.i64(n_alloc))
    victim = b.malloc(INT64, b.i64(n_alloc))
    with b.for_range(b.i64(n_alloc)) as i:
        b.store(b.elem_addr(victim, i), b.i64(7))
    with b.for_range(b.i64(n_write)) as i:
        b.store(b.elem_addr(a, i), b.i64(1))
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(n_alloc)) as i:
        b.store(total, b.add(b.load(total), b.load(b.elem_addr(victim, i))))
    b.call("print_i64", [b.load(total)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


@pytest.fixture
def linked_list_module():
    return build_linked_list_module()


@pytest.fixture
def sum_module():
    return build_sum_module()
