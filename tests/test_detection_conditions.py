"""Detection-condition tests (§2.5): how each error class manifests."""

import pytest

from repro.core import DpmrCompiler, PadMalloc, RearrangeHeap, ZeroBeforeFree
from repro.ir import INT32, INT64, ModuleBuilder, VOID, verify_module
from repro.machine import ExitStatus, run_process
from tests.conftest import build_overflow_module


DESIGNS = ("sds", "mds")


class TestWriteErrors:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_unpaired_corruption_detected(self, design):
        """§2.5.1: an overflow that corrupts unpaired bytes is detected when
        a replicated load reads the corrupted offset."""
        m = build_overflow_module(8, 18)
        golden = run_process(m)
        assert golden.status is ExitStatus.NORMAL  # silent corruption
        r = DpmrCompiler(design=design).compile(build_overflow_module(8, 18)).run()
        assert r.status is ExitStatus.DPMR_DETECTED

    @pytest.mark.parametrize("design", DESIGNS)
    def test_no_false_positives_without_error(self, design):
        m = build_overflow_module(8, 8)
        golden = run_process(m)
        r = DpmrCompiler(design=design).compile(build_overflow_module(8, 8)).run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text

    def test_overflow_within_padding_not_detected_by_pad_malloc_alone(self):
        """pad-malloc absorbs the *replica* overflow; the application
        overflow still corrupts, so detection relies on the replicated load
        pair seeing different data — which implicit diversity provides."""
        m = build_overflow_module(8, 9)  # 1-element overflow
        r = DpmrCompiler(design="sds", diversity=PadMalloc(1024)).compile(m).run()
        assert r.status in (ExitStatus.DPMR_DETECTED, ExitStatus.NORMAL)


class TestReadErrors:
    def _uaf_module(self, reuse: bool):
        """free(a); [maybe reuse chunk]; read a[2]."""
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        a = b.malloc(INT64, b.i64(4))
        with b.for_range(b.i64(4)) as i:
            b.store(b.elem_addr(a, i), b.i64(5))
        b.free(a)
        if reuse:
            d = b.malloc(INT64, b.i64(4))
            with b.for_range(b.i64(4)) as i:
                b.store(b.elem_addr(d, i), b.i64(9))
        v = b.load(b.elem_addr(a, b.i64(2)))
        b.call("print_i64", [v])
        b.ret(b.i32(0))
        verify_module(mb.module)
        return mb.module

    def test_dangling_read_after_reuse_missed_without_diversity(self):
        """§3.7: the no-diversity variant re-pairs reused chunks identically,
        so the dangling read loads the *same incorrect value* on both sides."""
        r = DpmrCompiler(design="sds").compile(self._uaf_module(True)).run()
        assert r.status is ExitStatus.NORMAL

    def test_dangling_read_after_reuse_caught_by_rearrange_heap(self):
        """rearrange-heap randomizes replica placement, so the reused chunk
        pairs differently and the read pair diverges (§2.6)."""
        r = (
            DpmrCompiler(design="sds", diversity=RearrangeHeap())
            .compile(self._uaf_module(True))
            .run(seed=3)
        )
        assert r.status is ExitStatus.DPMR_DETECTED

    def test_immediate_dangling_read_caught_by_zero_before_free(self):
        """Before reallocation, zero-before-free makes the replica read 0
        while the application reads stale data (§2.6)."""
        r = (
            DpmrCompiler(design="sds", diversity=ZeroBeforeFree())
            .compile(self._uaf_module(False))
            .run()
        )
        assert r.status is ExitStatus.DPMR_DETECTED

    def test_uninitialized_read_detected(self):
        """§1.3: uninitialized heap reads see different junk in application
        and replica objects, so the comparison fires."""
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        a = b.malloc(INT64, b.i64(4))
        v = b.load(b.elem_addr(a, b.i64(1)))  # never written
        b.call("print_i64", [v])
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = DpmrCompiler(design="sds").compile(mb.module).run()
        assert r.status is ExitStatus.DPMR_DETECTED


class TestFreeErrors:
    def test_double_free_crashes_naturally(self):
        """§2.5.3: the allocator detects the invalid second free → crash
        (natural detection)."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        a = b.malloc(INT64, b.i64(4))
        b.free(a)
        b.free(a)
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = DpmrCompiler(design="sds").compile(mb.module).run()
        assert r.status is ExitStatus.CRASH

    def test_wild_free_crashes(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        a = b.malloc(INT64, b.i64(4))
        bad = b.elem_addr(a, b.i64(1))  # interior pointer
        b.free(bad)
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = DpmrCompiler(design="sds").compile(mb.module).run()
        assert r.status is ExitStatus.CRASH

    @pytest.mark.parametrize("design", DESIGNS)
    def test_write_after_free_then_reuse_detected(self, design):
        """Premature free + reuse: later writes through the dangling pointer
        corrupt the new owner; the replicated loads diverge."""
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        fn, b = mb.define("main", INT32)
        a = b.malloc(INT64, b.i64(4))
        b.free(a)  # immediate free (the §3.4 fault)
        d = b.malloc(INT64, b.i64(4))  # takes a's chunk
        with b.for_range(b.i64(4)) as i:
            b.store(b.elem_addr(d, i), b.i64(7))
        b.store(b.elem_addr(a, b.i64(2)), b.i64(1))  # dangling write into d
        total = b.alloca(INT64)
        b.store(total, b.i64(0))
        with b.for_range(b.i64(4)) as i:
            b.store(total, b.add(b.load(total), b.load(b.elem_addr(d, i))))
        b.call("print_i64", [b.load(total)])
        b.ret(b.i32(0))
        verify_module(mb.module)
        r = (
            DpmrCompiler(design=design, diversity=RearrangeHeap())
            .compile(mb.module)
            .run(seed=1)
        )
        assert r.status in (ExitStatus.DPMR_DETECTED, ExitStatus.CRASH)
