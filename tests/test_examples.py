"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_example():
    out = _run("quickstart.py")
    assert "dpmr-detected" in out
    assert "silently" in out


def test_linked_list_transform_example():
    out = _run("linked_list_transform.py")
    assert "rvSop" in out  # SDS signature shown
    assert "rvRopPtr" in out  # MDS signature shown
    assert "BEHAVIOURAL EQUIVALENCE" in out


def test_dsa_scope_expansion_example():
    out = _run("dsa_scope_expansion.py")
    assert "DpmrTransformError" in out
    assert "allocs_excluded" in out


def test_banking_race_example():
    out = _run("banking_race.py")
    assert "RACE DETECTED" in out
    assert "no divergence" in out


@pytest.mark.slow
def test_tuning_example():
    out = _run("tuning.py", timeout=480)
    assert "DIVERSITY AXIS" in out
    assert "POLICY AXIS" in out
