"""The shard fabric: partition, lease, sync, merge — bit-identically.

The contract under test is the PR's acceptance criterion: a campaign run
across N shard worker nodes (processes simulating machines, each with its
own supervised pool and shard-local store) merges records **bit-identical**
(``ExperimentRecord.signature()``) and identically ordered to the 1-shard
run, with every fabric decision (lease grants, re-leases, syncs, per-shard
provenance) visible in the schema-5 merged manifest.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

import pytest

from repro.apps import app_factory
from repro.eval import (
    CampaignRequest,
    ExecConfig,
    WorkloadHarness,
    diversity_variants,
    job_for_harness,
    run,
    run_campaign_jobs_with_manifest,
    stdapp_variant,
)
from repro.faultinject import HEAP_ARRAY_RESIZE, IMMEDIATE_FREE
from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest
from repro.shard import Lease, LeaseTable, lease_size, sharding_fallback
from repro.shard.lease import LEASES_PER_SHARD

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the shard fabric requires the fork start method",
)

KIND = HEAP_ARRAY_RESIZE


def make_harness(name="mcf"):
    return WorkloadHarness(name, app_factory(name, 1), seeds=(0,))


def make_variants(n=3):
    return [stdapp_variant()] + diversity_variants("sds")[: n - 1]


def matrix_jobs():
    """A small resize+free matrix: 2 workloads x 2 kinds x 3 variants."""
    variants = make_variants()
    return [
        job_for_harness(make_harness(name), variants, kind, max_sites=2)
        for kind in (HEAP_ARRAY_RESIZE, IMMEDIATE_FREE)
        for name in ("mcf", "equake")
    ]


@pytest.fixture(scope="module")
def harness():
    return make_harness()


@pytest.fixture(scope="module")
def variants():
    return make_variants()


@pytest.fixture(scope="module")
def serial_baseline(harness, variants):
    """Signatures of the 1-shard run — the merge-identity reference."""
    res = run(harness, variants, kind=KIND, config=ExecConfig(shards=1))
    assert res.records
    return [r.signature() for r in res.records]


class TestLeases:
    def test_lease_size_auto_heuristic(self):
        assert lease_size(40, 4) == -(-40 // (4 * LEASES_PER_SHARD))
        assert lease_size(1, 8) == 1
        assert lease_size(100, 4, lease_items=7) == 7

    def test_partition_covers_items_exactly_in_order(self):
        items = [(0, s, v, 0) for s in range(5) for v in range(3)]
        table = LeaseTable(n_shards=4)
        leases = table.partition(items)
        assert [i for lease in leases for i in lease.items] == items
        assert table.grants == len(leases)
        assert table.regrants == 0
        assert all(isinstance(lease, Lease) for lease in leases)
        # Leases are hashable: they travel as supervised items.
        assert len({hash(lease) for lease in leases}) == len(leases)

    def test_recovery_partitions_count_as_regrants(self):
        table = LeaseTable(n_shards=2)
        table.partition([(0, 0, 0, 0), (0, 0, 1, 0)])
        again = table.partition([(0, 0, 1, 0)])
        assert table.regrants == len(again) > 0


class TestShardedIdentity:
    def test_four_shards_bit_identical_to_one(
        self, harness, variants, serial_baseline
    ):
        res = run(harness, variants, kind=KIND, config=ExecConfig(shards=4))
        assert [r.signature() for r in res.records] == serial_baseline

    def test_merged_manifest_records_the_fabric(self, harness, variants):
        res = run(harness, variants, kind=KIND, config=ExecConfig(shards=3))
        m = res.manifest
        assert m.schema == MANIFEST_SCHEMA == 5
        assert m.n_shards == 3
        assert m.lease_grants > 0
        assert m.lease_reassignments == 0
        assert m.lease_expiries == 0
        assert m.store_synced == len(res.records)
        assert "sharded" in m.worker_reason
        assert not m.quarantined
        # Per-shard provenance partitions the records and leases exactly.
        assert sum(s.n_records for s in m.shards) == len(res.records)
        assert sum(s.leases for s in m.shards) == m.lease_grants
        assert sorted(s.shard for s in m.shards) == [
            s.shard for s in m.shards
        ]
        # The schema-5 shape round-trips through JSON.
        clone = RunManifest.from_dict(m.to_dict())
        assert clone.to_dict() == m.to_dict()

    def test_full_matrix_on_four_shards(self):
        """The acceptance matrix: resize+free across workloads, 1 vs 4."""
        one, m1 = run_campaign_jobs_with_manifest(
            matrix_jobs(), config=ExecConfig(shards=1)
        )
        four, m4 = run_campaign_jobs_with_manifest(
            matrix_jobs(), config=ExecConfig(shards=4)
        )
        assert len(one) == len(four) > 0
        assert [r.signature() for r in one] == [r.signature() for r in four]
        assert m1.n_shards == 0 and m4.n_shards == 4
        assert m4.n_items == m1.n_items
        assert m4.status_counts == m1.status_counts

    def test_sharded_counter_totals_match_single_node(self, harness, variants):
        r1, m1 = run_campaign_jobs_with_manifest(
            [job_for_harness(harness, variants, KIND)],
            config=ExecConfig(shards=1),
        )
        _, m2 = run_campaign_jobs_with_manifest(
            [job_for_harness(harness, variants, KIND)],
            config=ExecConfig(shards=2),
        )
        assert m2.counter_totals == m1.counter_totals
        assert m2.n_records == m1.n_records == len(r1)


class TestShardedStore:
    def test_cold_sharded_run_populates_coordinator_store(
        self, tmp_path, harness, variants, serial_baseline
    ):
        store = str(tmp_path / "store")
        cold = run(
            harness,
            variants,
            kind=KIND,
            config=ExecConfig(shards=3, store_path=store),
        )
        assert [r.signature() for r in cold.records] == serial_baseline
        m = cold.manifest
        assert m.store_writes == len(cold.records)  # synced by the coordinator
        assert m.store_synced == len(cold.records)
        # Shard-local stores live under <store>/shards and never leak into
        # the coordinator store's key iteration.
        assert (Path(store) / "shards").is_dir()
        from repro.eval import ResultStore

        assert len(ResultStore(store)) == len(cold.records)

    def test_warm_resume_serves_everything_without_shards(
        self, tmp_path, harness, variants, serial_baseline
    ):
        store = str(tmp_path / "store")
        config = ExecConfig(shards=3, store_path=store)
        run(harness, variants, kind=KIND, config=config)
        warm = run(harness, variants, kind=KIND, config=config)
        m = warm.manifest
        assert m.store_hits == len(warm.records)
        assert m.lease_grants == 0 and not m.shards
        assert m.worker_reason == "all experiments served from store"
        assert [r.signature() for r in warm.records] == serial_baseline

    def test_on_record_streams_store_hits_and_synced_runs(
        self, tmp_path, harness, variants
    ):
        jobs = [job_for_harness(harness, variants, KIND, max_sites=2)]
        config = ExecConfig(shards=2, store_path=str(tmp_path / "s"))
        seen = []
        run_campaign_jobs_with_manifest(
            jobs,
            config=config,
            on_record=lambda item, rec, source: seen.append((tuple(item), source)),
        )
        assert seen and all(source == "run" for _, source in seen)
        warm = []
        run_campaign_jobs_with_manifest(
            jobs,
            config=config,
            on_record=lambda item, rec, source: warm.append((tuple(item), source)),
        )
        assert [i for i, _ in warm] == sorted(i for i, _ in seen)
        assert all(source == "store" for _, source in warm)


class TestFallbacks:
    def test_observability_forces_single_node(self, harness, variants, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.eval.parallel"):
            res = run(
                harness,
                variants,
                kind=KIND,
                config=ExecConfig(shards=4, counters=True),
            )
        assert res.manifest.n_shards == 0
        assert res.manifest.counters_enabled
        assert any("single-node" in r.getMessage() for r in caplog.records)

    def test_sharding_fallback_reasons(self):
        assert sharding_fallback(ExecConfig(shards=4), tracer=None) is None
        assert "observability" in sharding_fallback(
            ExecConfig(shards=4, counters=True), tracer=None
        )
        assert "observability" in sharding_fallback(
            ExecConfig(shards=4), tracer=object()
        )

    def test_exec_fingerprint_ignores_shards(self):
        from repro.eval.store import exec_fingerprint

        assert exec_fingerprint(ExecConfig(shards=1)) == exec_fingerprint(
            ExecConfig(shards=8)
        )

    def test_dpmr_shards_env_knob(self):
        assert ExecConfig.from_env({"DPMR_SHARDS": "4"}).shards == 4
        assert ExecConfig.from_env({"DPMR_SHARDS": "0"}).shards == 1
        assert ExecConfig.from_env({}).shards == 1
        with pytest.raises(ValueError):
            ExecConfig.from_env({"DPMR_SHARDS": "many"})


class TestServiceBackend:
    def test_daemon_on_shard_backend_matches_solo_run(self, tmp_path):
        """CampaignRequest -> shard scheduler -> streamed record frames."""
        from repro.service import ServiceClient, ServiceDaemon

        request = CampaignRequest(
            workloads=("mcf",),
            kinds=(KIND,),
            variants=("stdapp", "no-diversity", "zero-before-free"),
            max_sites=2,
        )
        solo = run(request, config=ExecConfig())
        sock = str(tmp_path / "svc.sock")
        with ServiceDaemon(ExecConfig(shards=2), unix_path=sock) as daemon:
            with ServiceClient(unix_path=sock) as client:
                res = client.submit(request)
            assert daemon.port == -1  # no TCP listener was bound
        assert [r.signature() for r in res.records] == [
            r.signature() for r in solo.records
        ]
