"""The campaign service: protocol, dedupe table, projections, daemon.

The service's contract is that it is *transparent*: a client submitting a
:class:`CampaignRequest` over the socket receives records bit-identical,
and identically ordered, to an in-process ``run(request)`` — even when a
concurrent request overlaps it and the shared tuples execute only once.
These tests pin that contract end to end (threaded daemon + real
sockets), plus the unit behaviour of each service layer: wire framing,
the content-addressed dedupe table, and the event-log projections.
"""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.eval import CampaignRequest, ExecConfig, ResultStore, run
from repro.faultinject import HEAP_ARRAY_RESIZE
from repro.service import (
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    protocol,
)
from repro.service.dedupe import DedupeTable, TupleRef
from repro.service.projections import EventLog, Projections

from .test_parallel_determinism import record_signature

KIND = HEAP_ARRAY_RESIZE

# Small but real: two variants x (<=2 sites) x one seed on mcf.
REQUEST = CampaignRequest(
    workloads=("mcf",),
    kinds=(KIND,),
    variants=("stdapp", "no-diversity"),
    max_sites=2,
)
# Overlaps REQUEST on the no-diversity tuples only.
OVERLAPPING = CampaignRequest(
    workloads=("mcf",),
    kinds=(KIND,),
    variants=("no-diversity", "zero-before-free"),
    max_sites=2,
)


def _snapshot(daemon):
    """Atomically read (events, projections) on the daemon's event loop."""

    async def snap():
        scheduler = daemon.scheduler
        return (
            [dict(e) for e in scheduler.log.events],
            scheduler.projections.to_dict(),
        )

    return asyncio.run_coroutine_threadsafe(snap(), daemon._loop).result(
        timeout=60
    )


class TestProtocol:
    def test_encode_decode_round_trip(self):
        msg = {"type": "status", "nested": {"a": [1, 2]}, "x": None}
        frame = protocol.encode(msg)
        assert frame.endswith(b"\n") and b"\n" not in frame[:-1]
        assert protocol.decode(frame) == msg

    def test_submit_frame_is_exactly_the_request_dict(self):
        frame = protocol.encode(protocol.submit_message(REQUEST))
        msg = protocol.decode(frame)
        assert msg["type"] == "submit"
        assert CampaignRequest.from_dict(msg["request"]) == REQUEST

    def test_malformed_frames_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.decode(b"nonsense\n")
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.decode(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError, match="'type'"):
            protocol.decode(b'{"no": "type"}\n')
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode(b"x" * (protocol.MAX_LINE_BYTES + 1))


class TestDedupeTable:
    def _ref(self, key):
        return TupleRef(entry=None, si=0, vi=0, ri=0, key=key)

    def test_admit_join_complete_fanout(self):
        table = DedupeTable()
        req_a, req_b = object(), object()
        assert table.admit(self._ref("k1"), req_a, 0) == "new"
        assert table.admit(self._ref("k1"), req_b, 3) == "inflight"
        assert table.take_pending() == ["k1"]
        assert table.take_pending() == []

        record = object()
        entry = table.complete("k1", record)
        assert [(s[0], s[1], s[2]) for s in entry.subscribers] == [
            (req_a, 0, "run"),
            (req_b, 3, "shared"),
        ]
        # Idempotent against duplicate callbacks; now an in-memory hit.
        assert table.complete("k1", record) is None
        assert table.lookup("k1") is record
        assert table.stats == {
            "scheduled": 1,
            "joins": 1,
            "memory_hits": 1,
            "store_hits": 0,
            "failed": 0,
        }

    def test_failed_tuple_can_be_retried(self):
        table = DedupeTable()
        table.admit(self._ref("k1"), object(), 0)
        table.take_pending()
        assert table.fail("k1") is not None
        assert table.lookup("k1") is None
        # Not completed: a later request schedules it from scratch.
        assert table.admit(self._ref("k1"), object(), 0) == "new"
        assert table.stats["failed"] == 1 and table.stats["scheduled"] == 2

    def test_store_hit_promoted_once(self):
        table = DedupeTable()
        record = object()
        assert table.serve_store_hit("k1", record) is True
        assert table.serve_store_hit("k1", object()) is False
        assert table.lookup("k1") is record
        assert table.stats["store_hits"] == 1


class TestProjections:
    def _populated(self):
        log, proj = EventLog(), Projections()

        def emit(kind, **fields):
            proj.apply(log.append(kind, **fields))

        emit(
            "request_admitted",
            request_id="r1",
            n_items=3,
            n_jobs=1,
            store_hits=1,
            shared_hits=0,
            executed=2,
        )
        emit(
            "tuple_done",
            workload="mcf",
            fault_kind=KIND,
            variant="stdapp",
            covered=True,
            detected=True,
            t2d=120,
        )
        emit(
            "tuple_done",
            workload="mcf",
            fault_kind=KIND,
            variant="stdapp",
            covered=False,
            detected=False,
            t2d=None,
        )
        emit("request_progress", request_id="r1", done=2, errors=0)
        emit("tuple_error", request_id="r1", site="s3")
        emit("batch_done", wall_s=0.25)
        emit("request_done", request_id="r1", errors=1, wall_s=0.5)
        emit("from_the_future", whatever=True)  # unknown kinds are ignored
        return log, proj

    def test_replay_equals_live_fold(self):
        log, live = self._populated()
        assert Projections.replay(log.events).to_dict() == live.to_dict()

    def test_derived_figures(self):
        _, proj = self._populated()
        snap = proj.to_dict()
        fig = snap["figures"][f"mcf/{KIND}/stdapp"]
        assert fig["records"] == 2 and fig["coverage"] == 0.5
        assert fig["mean_t2d"] == 120
        assert snap["totals"]["errors"] == 1
        assert snap["totals"]["completed_requests"] == 1
        assert snap["requests"]["r1"]["state"] == "done"
        assert proj.store_hit_rate() == pytest.approx(1 / 3)

    def test_hit_rate_none_before_any_admission(self):
        assert Projections().store_hit_rate() is None

    def test_shard_events_fold_into_per_shard_cells(self):
        """Shard-originated events: per-shard progress cells accumulate,
        unknown shard-era kinds are skipped, and replay still equals the
        live fold over the mixed log."""
        log, proj = self._populated()

        def emit(kind, **fields):
            proj.apply(log.append(kind, **fields))

        emit("shard_done", shard=1, leases=2, n_records=4, retries=1, wall_s=0.25)
        emit("shard_done", shard=0, leases=1, n_records=2, retries=0, wall_s=0.5)
        emit("shard_done", shard=1, leases=1, n_records=2, retries=0, wall_s=0.25)
        emit("shard_from_the_future", shard=9, whatever=True)  # ignored
        snap = proj.to_dict()
        assert snap["shards"] == {
            "shard-0": {"leases": 1, "records": 2, "retries": 0, "wall_s": 0.5},
            "shard-1": {"leases": 3, "records": 6, "retries": 1, "wall_s": 0.5},
        }
        assert Projections.replay(log.events).to_dict() == proj.to_dict()

    def test_fresh_projections_have_no_shard_cells(self):
        assert Projections().to_dict()["shards"] == {}


class TestServiceEndToEnd:
    def test_records_bit_identical_to_in_process_run(self):
        solo = run(REQUEST, config=ExecConfig())
        with ServiceDaemon(ExecConfig()) as daemon:
            with ServiceClient(port=daemon.port) as client:
                assert client.ping()
                res = client.submit(REQUEST)
        assert len(res.records) == len(solo.records) > 0
        assert [record_signature(r) for r in res.records] == [
            record_signature(r) for r in solo.records
        ]
        m = res.manifest
        assert m.mode == "service"
        assert m.n_records == len(res.records)
        assert m.store_misses == len(res.records)  # nothing shared or stored
        assert m.shared_hits == 0

    def test_unix_socket_transport_is_equivalent(self, tmp_path):
        """Same LDJSON protocol over a per-test UNIX socket: no TCP port
        is bound at all, so parallel test runs cannot collide."""
        solo = run(REQUEST, config=ExecConfig())
        sock = str(tmp_path / "dpmr.sock")
        with ServiceDaemon(ExecConfig(), unix_path=sock) as daemon:
            assert daemon.port == -1
            with ServiceClient(unix_path=sock) as client:
                assert client.ping()
                res = client.submit(REQUEST)
        assert [record_signature(r) for r in res.records] == [
            record_signature(r) for r in solo.records
        ]

    def test_shard_backend_daemon_emits_shard_events(self, tmp_path):
        """A daemon whose executor runs on the shard fabric streams the
        same records and folds real shard_done events into projections."""
        solo = run(REQUEST, config=ExecConfig())
        sock = str(tmp_path / "dpmr.sock")
        with ServiceDaemon(ExecConfig(shards=2), unix_path=sock) as daemon:
            with ServiceClient(unix_path=sock) as client:
                res = client.submit(REQUEST)
            # The done frame can beat the runner's batch bookkeeping by a
            # hair; wait for the shard events to land in the log.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                events, projections = _snapshot(daemon)
                if any(e["kind"] == "shard_done" for e in events):
                    break
                time.sleep(0.05)
        assert [record_signature(r) for r in res.records] == [
            record_signature(r) for r in solo.records
        ]
        shard_events = [e for e in events if e["kind"] == "shard_done"]
        assert shard_events
        assert projections["shards"]
        assert sum(e["n_records"] for e in shard_events) == len(res.records)
        assert sum(
            cell["records"] for cell in projections["shards"].values()
        ) == len(res.records)
        assert Projections.replay(events).to_dict() == projections

    def test_concurrent_overlapping_requests_share_tuples(self):
        solo_a = run(REQUEST, config=ExecConfig())
        solo_b = run(OVERLAPPING, config=ExecConfig())
        union = {record_signature(r) for r in solo_a.records} | {
            record_signature(r) for r in solo_b.records
        }
        overlap = len(solo_a.records) + len(solo_b.records) - len(union)
        assert overlap > 0  # the matrices genuinely intersect

        results = {}

        def submit(name, request, port):
            with ServiceClient(port=port) as client:
                results[name] = client.submit(request)

        with ServiceDaemon(ExecConfig()) as daemon:
            threads = [
                threading.Thread(target=submit, args=("a", REQUEST, daemon.port)),
                threading.Thread(
                    target=submit, args=("b", OVERLAPPING, daemon.port)
                ),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            events, projections = _snapshot(daemon)
            stats = dict(daemon.scheduler.dedupe.stats)

        # Every client gets its full matrix, bit-identical to its solo run.
        for name, solo in (("a", solo_a), ("b", solo_b)):
            assert [record_signature(r) for r in results[name].records] == [
                record_signature(r) for r in solo.records
            ]

        # The overlapping tuples executed exactly once.
        m_a, m_b = results["a"].manifest, results["b"].manifest
        assert m_a.store_misses + m_b.store_misses == len(union)
        assert m_a.shared_hits + m_b.shared_hits == overlap
        assert stats["scheduled"] == len(union)
        assert stats["joins"] + stats["memory_hits"] == overlap

        # The event-log projections are a pure fold over the log.
        assert Projections.replay(events).to_dict() == projections
        totals = projections["totals"]
        assert totals["requests"] == 2
        assert totals["executed"] == len(union)
        assert totals["shared_hits"] == overlap

    def test_disconnect_keeps_tuples_and_store_retains_results(self, tmp_path):
        solo = run(REQUEST, config=ExecConfig())
        store_dir = str(tmp_path / "store")
        config = ExecConfig(store_path=store_dir)
        with ServiceDaemon(config) as daemon:
            client = ServiceClient(port=daemon.port)
            accepted = client.submit_nowait(REQUEST)
            client.close()  # walk away mid-request

            # The daemon keeps executing; the store fills up regardless.
            store = ResultStore(store_dir)
            deadline = time.monotonic() + 300
            while len(store) < accepted["n_items"]:
                assert time.monotonic() < deadline, "daemon dropped the work"
                time.sleep(0.5)

            # A later client finds everything finished in this daemon.
            with ServiceClient(port=daemon.port) as later:
                res = later.submit(REQUEST)
            assert res.manifest.store_misses == 0
            assert (
                res.manifest.store_hits + res.manifest.shared_hits
                == accepted["n_items"]
            )
        # A *fresh* daemon over the same directory serves pure store hits.
        with ServiceDaemon(config) as daemon:
            with ServiceClient(port=daemon.port) as client:
                res = client.submit(REQUEST)
        assert res.manifest.store_hits == accepted["n_items"]
        assert res.manifest.store_misses == 0
        assert [record_signature(r) for r in res.records] == [
            record_signature(r) for r in solo.records
        ]

    def test_empty_campaign_reason(self):
        empty = CampaignRequest(
            workloads=("mcf",), kinds=(KIND,), variants=("stdapp",), max_sites=0
        )
        solo = run(empty, config=ExecConfig())
        assert solo.manifest.worker_reason == "empty_campaign"
        with ServiceDaemon(ExecConfig()) as daemon:
            with ServiceClient(port=daemon.port) as client:
                res = client.submit(empty)
        assert res.manifest.worker_reason == "empty_campaign"
        assert len(res.records) == 0 and res.manifest.n_records == 0

    def test_bad_submissions_rejected_not_fatal(self):
        with ServiceDaemon(ExecConfig()) as daemon:
            with ServiceClient(port=daemon.port) as client:
                bogus = CampaignRequest(
                    workloads=("nonesuch",), kinds=(KIND,), variants=("stdapp",)
                )
                with pytest.raises(ServiceError, match="nonesuch"):
                    client.submit(bogus)
                # The connection survives the rejection.
                assert client.ping()

    def test_raw_socket_protocol_errors(self):
        with ServiceDaemon(ExecConfig()) as daemon:
            sock = socket.create_connection(
                (daemon.host, daemon.port), timeout=60
            )
            rfile = sock.makefile("rb")
            hello = protocol.decode(rfile.readline())
            assert hello == {"type": "hello", "version": protocol.PROTOCOL_VERSION}
            sock.sendall(b"not json at all\n")
            assert protocol.decode(rfile.readline())["type"] == "error"
            sock.sendall(protocol.encode({"type": "bogus"}))
            msg = protocol.decode(rfile.readline())
            assert msg["type"] == "error" and "bogus" in msg["error"]
            sock.close()


class TestHttpShim:
    def test_healthz_submit_and_status(self):
        with ServiceDaemon(ExecConfig(), http_port=0) as daemon:
            base = f"http://{daemon.host}:{daemon.http_port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=60) as resp:
                assert json.loads(resp.read()) == {"ok": True}

            body = json.dumps(REQUEST.to_dict()).encode("utf-8")
            req = urllib.request.Request(
                f"{base}/submit",
                data=body,
                headers={"content-type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=600) as resp:
                payload = json.loads(resp.read())
            from repro.eval import CampaignResult

            result = CampaignResult.from_dict(payload)
            solo = run(REQUEST, config=ExecConfig())
            assert [record_signature(r) for r in result.records] == [
                record_signature(r) for r in solo.records
            ]

            with urllib.request.urlopen(f"{base}/status", timeout=60) as resp:
                status = json.loads(resp.read())
            assert status["projections"]["totals"]["requests"] == 1

    def test_http_bad_request(self):
        with ServiceDaemon(ExecConfig(), http_port=0) as daemon:
            base = f"http://{daemon.host}:{daemon.http_port}"
            req = urllib.request.Request(
                f"{base}/submit", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(req, timeout=60)
            assert exc_info.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{base}/nowhere", timeout=60)
            assert exc_info.value.code == 404
