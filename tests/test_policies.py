"""State comparison policy tests (§2.7, Table 2.9)."""

import pytest

from repro.core import (
    AllLoadsPolicy,
    DpmrCompiler,
    StaticLoadCheckingPolicy,
    TemporalLoadCheckingPolicy,
    static_10,
    static_50,
    static_90,
    temporal_1_2,
    temporal_1_8,
    temporal_7_8,
)
from repro.core.policies import MASK_COUNTER_GLOBAL
from repro.ir import instructions as ins
from repro.machine import ExitStatus, run_process
from tests.conftest import build_overflow_module, build_sum_module


def _count_detect_sites(module):
    return sum(
        1
        for f in module.defined_functions()
        for i in f.instructions()
        if isinstance(i, ins.Call) and i.is_direct and i.callee == "dpmr_detect"
    )


def _count_loads(module):
    return sum(
        1
        for f in module.defined_functions()
        for i in f.instructions()
        if isinstance(i, ins.Load)
    )


class TestAllLoads:
    def test_every_eligible_load_gets_a_check(self):
        src = build_sum_module(10)
        src_loads = _count_loads(src)
        out = DpmrCompiler(design="mds", policy=AllLoadsPolicy()).compile(src).module
        # MDS: every non-pointer source load gets exactly one detect site
        assert _count_detect_sites(out) > 0
        assert _count_detect_sites(out) <= src_loads


class TestStaticLoadChecking:
    def test_fraction_bounds_validated(self):
        with pytest.raises(ValueError):
            StaticLoadCheckingPolicy(1.5)

    def test_site_counts_scale_with_fraction(self):
        counts = {}
        for policy in (static_10(), static_50(), static_90()):
            out = (
                DpmrCompiler(design="mds", policy=policy)
                .compile(build_sum_module(40))
                .module
            )
            counts[policy.name] = _count_detect_sites(out)
        assert counts["static-10%"] < counts["static-50%"] < counts["static-90%"]

    def test_rebuilds_are_deterministic(self):
        policy = static_50(seed=99)
        a = DpmrCompiler(design="mds", policy=policy).compile(build_sum_module(20))
        c = DpmrCompiler(design="mds", policy=policy).compile(build_sum_module(20))
        assert _count_detect_sites(a.module) == _count_detect_sites(c.module)
        assert a.run().cycles == c.run().cycles

    def test_static_reduces_overhead(self):
        """§3.8: static 10% achieves roughly a 1/3 speedup over all-loads."""
        all_loads = (
            DpmrCompiler(design="sds", policy=AllLoadsPolicy())
            .compile(build_sum_module(40))
            .run()
        )
        s10 = (
            DpmrCompiler(design="sds", policy=static_10())
            .compile(build_sum_module(40))
            .run()
        )
        assert s10.cycles < all_loads.cycles


class TestTemporalLoadChecking:
    def test_mask_fractions(self):
        assert temporal_1_8().name == "temporal-1/8"
        assert bin(temporal_1_8().mask).count("1") == 8
        assert bin(temporal_1_2().mask).count("1") == 32
        assert bin(temporal_7_8().mask).count("1") == 56

    def test_mask_counter_global_added(self):
        out = (
            DpmrCompiler(design="sds", policy=temporal_1_2())
            .compile(build_sum_module(10))
            .module
        )
        assert MASK_COUNTER_GLOBAL in out.globals

    def test_temporal_increases_overhead_over_all_loads(self):
        """§3.8's key negative result: the per-load counter/branch work makes
        temporal checking *more* expensive than checking every load."""
        all_loads = (
            DpmrCompiler(design="sds", policy=AllLoadsPolicy())
            .compile(build_sum_module(40))
            .run()
        )
        t18 = (
            DpmrCompiler(design="sds", policy=temporal_1_8())
            .compile(build_sum_module(40))
            .run()
        )
        assert t18.cycles > all_loads.cycles

    def test_temporal_checks_subset_of_loads_at_runtime(self):
        """With mask 1/2 the dynamic number of comparisons halves, yet the
        program output is unchanged."""
        golden = run_process(build_sum_module(20))
        r = (
            DpmrCompiler(design="sds", policy=temporal_1_2())
            .compile(build_sum_module(20))
            .run()
        )
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text


class TestDetectionUnderReducedChecking:
    @pytest.mark.parametrize(
        "policy_factory",
        [AllLoadsPolicy, temporal_1_2, temporal_7_8, static_90, static_50],
    )
    def test_overflow_still_detected(self, policy_factory):
        """§3.8: coverage is robust in the face of reduced checking — errors
        propagate to many loads, and faulty code re-executes."""
        m = build_overflow_module(8, 24)
        r = (
            DpmrCompiler(design="sds", policy=policy_factory())
            .compile(m)
            .run()
        )
        assert r.status is ExitStatus.DPMR_DETECTED

    def test_static_10_may_miss(self):
        """The paper saw coverage dip only at static 10% — with few checked
        sites a fault can escape."""
        m = build_overflow_module(4, 6)
        r = (
            DpmrCompiler(design="sds", policy=static_10(seed=7))
            .compile(m)
            .run()
        )
        assert r.status in (ExitStatus.NORMAL, ExitStatus.DPMR_DETECTED)
