"""Fault-injection framework tests (§3.4)."""

import pytest

from repro.core import DpmrCompiler
from repro.faultinject import (
    Campaign,
    FaultSite,
    HEAP_ARRAY_RESIZE,
    IMMEDIATE_FREE,
    InjectionError,
    enumerate_sites,
    inject,
    would_definitely_not_manifest,
)
from repro.ir import INT32, INT64, ModuleBuilder, VOID, verify_module
from repro.ir import instructions as ins
from repro.ir.values import ConstInt
from repro.machine import ExitStatus, run_process
from tests.conftest import build_sum_module


class TestSiteEnumeration:
    def test_resize_targets_array_allocations_only(self):
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        b.malloc(INT64)  # scalar allocation — not a resize target
        b.malloc(INT64, b.i64(8))  # array allocation — a resize target
        b.ret(b.i32(0))
        m = mb.module
        assert len(enumerate_sites(m, HEAP_ARRAY_RESIZE)) == 1
        assert len(enumerate_sites(m, IMMEDIATE_FREE)) == 2

    def test_unknown_kind_rejected(self, sum_module):
        with pytest.raises(ValueError):
            enumerate_sites(sum_module, "bit-flip")

    def test_site_ids_stable_across_rebuilds(self):
        s1 = enumerate_sites(build_sum_module(), HEAP_ARRAY_RESIZE)
        s2 = enumerate_sites(build_sum_module(), HEAP_ARRAY_RESIZE)
        assert [s.site_id for s in s1] == [s.site_id for s in s2]


class TestResizeInjection:
    def test_constant_count_halved(self):
        m = build_sum_module(16)
        site = enumerate_sites(m, HEAP_ARRAY_RESIZE)[0]
        inject(m, site, percent=50)
        fn = m.functions[site.function]
        malloc = fn.block(site.block).instructions[site.index]
        assert isinstance(malloc, ins.Malloc)
        assert isinstance(malloc.count, ConstInt)
        assert malloc.count.value == 8
        assert malloc.fault_site == site.site_id

    def test_register_count_scaled_with_inserted_arithmetic(self):
        mb = ModuleBuilder()
        mb.declare_external("print_i64", VOID, [INT64])
        sized, sb = mb.define("alloc_n", INT32, [INT64], ["n"])
        arr = sb.malloc(INT64, sized.params[0])
        sb.free(arr)
        sb.ret(sb.i32(0))
        fn, b = mb.define("main", INT32)
        b.call("alloc_n", [b.i64(10)])
        b.ret(b.i32(0))
        m = mb.module
        site = enumerate_sites(m, HEAP_ARRAY_RESIZE)[0]
        before = len(m.functions["alloc_n"].block(site.block).instructions)
        inject(m, site)
        after = len(m.functions["alloc_n"].block(site.block).instructions)
        assert after == before + 2  # mul + sdiv inserted
        verify_module(m)

    def test_resized_program_misbehaves_or_survives(self):
        """A halved allocation leads to out-of-bounds writes; the golden run
        either silently corrupts (normal) or crashes."""
        m = build_sum_module(16)
        site = enumerate_sites(m, HEAP_ARRAY_RESIZE)[0]
        inject(m, site)
        r = run_process(m)
        assert r.status in (ExitStatus.NORMAL, ExitStatus.CRASH, ExitStatus.TIMEOUT)
        assert site.site_id in r.fault_activations

    def test_dpmr_detects_resized_allocation(self):
        m = build_sum_module(16)
        site = enumerate_sites(m, HEAP_ARRAY_RESIZE)[0]
        inject(m, site)
        r = DpmrCompiler(design="sds").compile(m).run()
        assert r.status is ExitStatus.DPMR_DETECTED


class TestImmediateFreeInjection:
    def test_free_inserted_after_malloc(self):
        m = build_sum_module()
        site = enumerate_sites(m, IMMEDIATE_FREE)[0]
        inject(m, site)
        fn = m.functions[site.function]
        block = fn.block(site.block)
        nxt = block.instructions[site.index + 1]
        assert isinstance(nxt, ins.Free)
        assert nxt.fault_site == site.site_id
        verify_module(m)

    def test_activation_recorded_with_cycle_stamp(self):
        m = build_sum_module()
        site = enumerate_sites(m, IMMEDIATE_FREE)[0]
        inject(m, site)
        r = run_process(m)
        assert r.fault_activations[site.site_id] > 0
        assert r.first_activation == r.fault_activations[site.site_id]


class TestStaticFilter:
    def test_filters_requests_that_round_up_identically(self):
        """§3.4's example: a 24-byte request reduced to 12 bytes still gets
        the 24-byte minimum chunk, so the fault cannot manifest."""
        mb = ModuleBuilder()
        fn, b = mb.define("main", INT32)
        b.malloc(INT64, b.i64(3))  # 24 bytes → resized 8 → still 24 reserved
        b.malloc(INT64, b.i64(100))  # 800 bytes → 400: manifests
        b.ret(b.i32(0))
        m = mb.module
        sites = enumerate_sites(m, HEAP_ARRAY_RESIZE)
        flags = [would_definitely_not_manifest(m, s) for s in sites]
        assert flags == [True, False]

    def test_campaign_applies_filter(self):
        def factory():
            mb = ModuleBuilder()
            fn, b = mb.define("main", INT32)
            b.malloc(INT64, b.i64(3))
            b.malloc(INT64, b.i64(100))
            b.ret(b.i32(0))
            return mb.module

        c = Campaign(factory, HEAP_ARRAY_RESIZE)
        assert len(c.sites) == 1
        unfiltered = Campaign(factory, HEAP_ARRAY_RESIZE, apply_static_filter=False)
        assert len(unfiltered.sites) == 2


class TestCampaign:
    def test_faulty_modules_are_fresh_builds(self):
        c = Campaign(build_sum_module, IMMEDIATE_FREE)
        m1 = c.faulty_module(c.sites[0])
        m2 = c.faulty_module(c.sites[0])
        assert m1 is not m2
        assert c.pristine_module() is not m1

    def test_bad_site_rejected(self):
        c = Campaign(build_sum_module, IMMEDIATE_FREE)
        bogus = FaultSite(IMMEDIATE_FREE, "main", "entry", 999)
        with pytest.raises(InjectionError):
            c.faulty_module(bogus)

    def test_injection_survives_dpmr_transformation(self):
        """Faults are injected pre-DPMR; the transformed module must carry
        the fault-site markers through (activation still recorded)."""
        c = Campaign(build_sum_module, IMMEDIATE_FREE)
        site = c.sites[0]
        build = DpmrCompiler(design="sds").compile(c.faulty_module(site))
        r = build.run()
        assert site.site_id in r.fault_activations
