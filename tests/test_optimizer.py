"""Optimizer pass tests: semantics preservation and cleanup effectiveness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    INT32,
    INT64,
    ModuleBuilder,
    VOID,
    verify_module,
)
from repro.ir import instructions as ins
from repro.ir.optimizer import (
    eliminate_dead_code,
    fold_constants,
    optimize_module,
    simplify_branches,
)
from repro.machine import ExitStatus, run_process
from tests.conftest import build_linked_list_module, build_sum_module


def _print_main(build_body):
    mb = ModuleBuilder()
    mb.declare_external("print_i64", VOID, [INT64])
    fn, b = mb.define("main", INT32)
    build_body(b)
    verify_module(mb.module)
    return mb.module


class TestConstantFolding:
    def test_folds_arithmetic_chain(self):
        def body(b):
            v = b.add(b.mul(b.i64(6), b.i64(7)), b.i64(0))
            b.call("print_i64", [v])
            b.ret(b.i32(0))

        m = _print_main(body)
        n = fold_constants(m)
        assert n >= 2
        verify_module(m)
        assert run_process(m).output_text == "42"

    def test_folds_comparisons(self):
        def body(b):
            c = b.slt(b.i64(1), b.i64(2))
            v = b.num_cast(c, INT64)
            b.call("print_i64", [v])
            b.ret(b.i32(0))

        m = _print_main(body)
        fold_constants(m)
        assert run_process(m).output_text == "1"

    def test_division_by_zero_not_folded(self):
        def body(b):
            v = b.sdiv(b.i64(1), b.i64(0))
            b.call("print_i64", [v])
            b.ret(b.i32(0))

        m = _print_main(body)
        fold_constants(m)
        # the trap must survive optimization
        assert run_process(m).status is ExitStatus.CRASH

    def test_wrapping_preserved(self):
        def body(b):
            big = b.num_cast(b.i64(2**31 - 1), INT32)
            one = b.num_cast(b.i64(1), INT32)
            v = b.add(big, one)
            b.call("print_i64", [b.num_cast(v, INT64)])
            b.ret(b.i32(0))

        m = _print_main(body)
        before = run_process(_print_main(body)).output_text
        fold_constants(m)
        assert run_process(m).output_text == before == str(-(2**31))


class TestDeadCodeElimination:
    def test_removes_unused_arithmetic(self):
        def body(b):
            b.add(b.i64(1), b.i64(2))  # dead
            b.mul(b.i64(3), b.i64(4))  # dead
            b.call("print_i64", [b.i64(9)])
            b.ret(b.i32(0))

        m = _print_main(body)
        removed = eliminate_dead_code(m)
        assert removed == 2
        assert run_process(m).output_text == "9"

    def test_keeps_loads_and_stores(self):
        """DCE must never remove memory operations — loads participate in
        DPMR's comparison semantics even when the value is unused."""

        def body(b):
            p = b.malloc(INT64, b.i64(2))
            b.store(b.elem_addr(p, b.i64(0)), b.i64(5))
            b.load(b.elem_addr(p, b.i64(0)))  # result unused but kept
            b.call("print_i64", [b.i64(1)])
            b.ret(b.i32(0))

        m = _print_main(body)
        eliminate_dead_code(m)
        loads = [
            i for i in m.functions["main"].instructions() if isinstance(i, ins.Load)
        ]
        assert len(loads) == 1

    def test_keeps_calls(self):
        def body(b):
            b.call("print_i64", [b.i64(3)])
            b.ret(b.i32(0))

        m = _print_main(body)
        eliminate_dead_code(m)
        assert run_process(m).output_text == "3"


class TestBranchSimplification:
    def test_constant_branch_becomes_jump(self):
        def body(b):
            c = b.eq(b.i64(1), b.i64(1))
            with b.if_else(c) as arms:
                with arms.then():
                    b.call("print_i64", [b.i64(1)])
                with arms.otherwise():
                    b.call("print_i64", [b.i64(2)])
            b.ret(b.i32(0))

        m = _print_main(body)
        stats = optimize_module(m)
        assert stats["branches_simplified"] >= 1
        assert stats["blocks_removed"] >= 1
        verify_module(m)
        assert run_process(m).output_text == "1"

    def test_unreachable_blocks_removed(self):
        def body(b):
            c = b.eq(b.i64(0), b.i64(1))
            with b.if_then(c):
                b.call("print_i64", [b.i64(99)])
            b.ret(b.i32(0))

        m = _print_main(body)
        blocks_before = len(m.functions["main"].blocks)
        optimize_module(m)
        assert len(m.functions["main"].blocks) < blocks_before
        assert run_process(m).output_text == ""


class TestOnTransformedModules:
    @pytest.mark.parametrize("design", ["sds", "mds"])
    def test_optimizing_dpmr_output_preserves_behaviour(self, design):
        from repro.core import DpmrCompiler

        golden = run_process(build_linked_list_module())
        build = DpmrCompiler(design=design).compile(build_linked_list_module())
        stats = optimize_module(build.module)
        verify_module(build.module)
        r = build.run()
        assert r.status is ExitStatus.NORMAL
        assert r.output_text == golden.output_text

    def test_optimizer_reduces_cycles_or_is_neutral(self):
        from repro.core import DpmrCompiler

        unopt = DpmrCompiler(design="sds").compile(build_sum_module(20))
        baseline = unopt.run().cycles
        opt = DpmrCompiler(design="sds").compile(build_sum_module(20))
        optimize_module(opt.module)
        assert opt.run().cycles <= baseline


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
            st.integers(-100, 100),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=20)
def test_folding_matches_interpreter(ops):
    """Folded constant chains must equal the interpreter's own evaluation."""

    def body(b):
        acc = b.i64(1)
        for op, k in ops:
            acc = b.binop(op, acc, b.i64(k))
        b.call("print_i64", [acc])
        b.ret(b.i32(0))

    unopt = _print_main(body)
    expected = run_process(unopt).output_text
    opt = _print_main(body)
    optimize_module(opt)
    verify_module(opt)
    assert run_process(opt).output_text == expected
