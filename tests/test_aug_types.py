"""Augmented type (``at()``) tests: Tables 2.3/2.4 (SDS) and 4.1/4.2 (MDS)."""

import pytest

from repro.core import ReplicationDesign, TypeMaps
from repro.core.aug_types import composed_shadow_aug_reference, contains_function_type
from repro.ir import (
    ArrayType,
    FLOAT64,
    FunctionType,
    INT32,
    INT64,
    INT8,
    PointerType,
    StructType,
    UnionType,
    VOID,
    VOID_PTR,
)


@pytest.fixture
def sds():
    return TypeMaps(ReplicationDesign.SDS)


@pytest.fixture
def mds():
    return TypeMaps(ReplicationDesign.MDS)


def _structurally_equal(a, b, depth=0):
    """Structural comparison tolerant of identified-vs-literal structs."""
    if depth > 12:
        return True
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return _structurally_equal(a.pointee, b.pointee, depth + 1)
    if isinstance(a, StructType) and isinstance(b, StructType):
        if len(a.fields) != len(b.fields):
            return False
        return all(
            _structurally_equal(x, y, depth + 1)
            for x, y in zip(a.fields, b.fields)
        )
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return a.count == b.count and _structurally_equal(
            a.element, b.element, depth + 1
        )
    if isinstance(a, UnionType) and isinstance(b, UnionType):
        if len(a.members) != len(b.members):
            return False
        return all(
            _structurally_equal(x, y, depth + 1)
            for x, y in zip(a.members, b.members)
        )
    return a == b


class TestIdentityCases:
    """at() changes only types that mention function types."""

    @pytest.mark.parametrize(
        "t",
        [
            INT32,
            FLOAT64,
            PointerType(INT8),
            StructType([INT32, PointerType(INT64)]),
            ArrayType(PointerType(INT8), 4),
            UnionType([INT32, PointerType(INT8)]),
        ],
    )
    def test_no_function_types_identity(self, sds, t):
        assert sds.at(t) is t

    def test_contains_function_type(self):
        assert contains_function_type(FunctionType(VOID, []))
        assert contains_function_type(PointerType(FunctionType(VOID, [])))
        assert not contains_function_type(StructType([INT32, PointerType(INT8)]))

    def test_recursive_struct_identity(self, sds):
        ll = StructType.opaque("LL")
        ll.set_fields([INT32, PointerType(ll)])
        assert sds.at(ll) is ll


class TestTable24Example:
    """at(int8[]* (int8[]*, int8[]*)) under SDS (Table 2.4)."""

    def test_sds_function_augmentation(self, sds):
        s = PointerType(ArrayType(INT8))
        ft = FunctionType(s, [s, s])
        aug = sds.aug.aug_function_type(ft)
        assert aug.ret == s
        # rvSop + (s1, s1Rop, s1Nsop) + (s2, s2Rop, s2Nsop) = 7 params
        assert len(aug.params) == 7
        rv_sop = aug.params[0]
        assert isinstance(rv_sop, PointerType)
        sop = rv_sop.pointee
        assert isinstance(sop, StructType)
        assert sop.fields[0] == s  # rop of the return value
        assert aug.params[1] == s and aug.params[2] == s
        assert aug.params[3] == VOID_PTR or isinstance(aug.params[3], PointerType)
        # st(int8[]) is null, so the NSOP params degrade to void*
        assert _structurally_equal(aug.params[3], VOID_PTR)
        assert aug.params[4] == s and aug.params[5] == s
        assert _structurally_equal(aug.params[6], VOID_PTR)

    def test_sds_nonpointer_params_unchanged(self, sds):
        ft = FunctionType(INT32, [INT32, FLOAT64])
        aug = sds.aug.aug_function_type(ft)
        assert aug.ret == INT32
        assert list(aug.params) == [INT32, FLOAT64]


class TestTable42Example:
    """MDS augmentation (Table 4.2): ROPs only, rvRopPtr for pointer returns."""

    def test_mds_function_augmentation(self, mds):
        s = PointerType(ArrayType(INT8))
        ft = FunctionType(s, [s, s])
        aug = mds.aug.aug_function_type(ft)
        assert aug.ret == s
        # rvRopPtr + (s1, s1Rop) + (s2, s2Rop) = 5 params
        assert len(aug.params) == 5
        assert aug.params[0] == PointerType(s)  # int8[]** rvRopPtr
        assert aug.params[1] == s and aug.params[2] == s
        assert aug.params[3] == s and aug.params[4] == s

    def test_mds_void_return_no_slot(self, mds):
        ft = FunctionType(VOID, [PointerType(INT64)])
        aug = mds.aug.aug_function_type(ft)
        assert len(aug.params) == 2


class TestNestedFunctionTypes:
    def test_struct_with_function_pointer_field(self, sds):
        ft = FunctionType(INT32, [PointerType(INT8)])
        s = StructType([INT32, PointerType(ft)])
        aug = sds.at(s)
        assert aug is not s
        fp = aug.fields[1]
        assert isinstance(fp.pointee, FunctionType)
        # the pointed-to function type got augmented: ptr param gains rop+nsop
        assert len(fp.pointee.params) == 3

    def test_function_pointer_param_is_augmented(self, sds):
        """qsort-style: a function-pointer parameter's own type augments."""
        elem = PointerType(INT64)
        cmp = PointerType(FunctionType(INT32, [elem, elem]))
        ft = FunctionType(VOID, [cmp])
        aug = sds.aug.aug_function_type(ft)
        # cmp is a pointer param: cmp, cmp_r, cmp_s
        assert len(aug.params) == 3
        inner = aug.params[0].pointee
        assert isinstance(inner, FunctionType)
        assert len(inner.params) == 6  # (a, a_r, a_s, b, b_r, b_s)


class TestComposedMapping:
    """(st∘at)(t) — Table 2.5 — must agree with st(at(t))."""

    @pytest.mark.parametrize(
        "t",
        [
            PointerType(INT64),
            PointerType(ArrayType(INT8)),
            StructType([PointerType(INT8), INT32]),
            ArrayType(PointerType(FLOAT64), 3),
            StructType([INT32, FLOAT64]),
            UnionType([PointerType(INT8), INT64]),
        ],
    )
    def test_sat_matches_reference(self, sds, t):
        direct = sds.sat(t)
        reference = composed_shadow_aug_reference(sds, t)
        if direct is None:
            assert reference is None
        else:
            assert _structurally_equal(direct, reference)


class TestSpt:
    def test_spt_of_pointer_with_shadow(self, sds):
        t = PointerType(PointerType(INT64))
        spt = sds.aug.spt(t)
        assert isinstance(spt, PointerType)
        assert isinstance(spt.pointee, StructType)

    def test_spt_degrades_to_void_ptr(self, sds):
        t = PointerType(INT64)
        assert sds.aug.spt(t) == VOID_PTR


class TestPhiOverAugTypes:
    def test_phi_via_typemaps(self, sds):
        t = StructType([INT32, PointerType(INT8), PointerType(INT64)])
        assert sds.phi(t, 1) == 0
        assert sds.phi(t, 2) == 1
