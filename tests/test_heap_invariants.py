"""Property tests for the heap allocator's structural invariants.

Hypothesis drives random alloc/free interleavings directly against
:class:`~repro.machine.heap.HeapAllocator` and checks, after every
operation, the invariants the fault-injection results rest on: live
chunks never overlap, the free list stays walkable (correct magics, in
bounds, acyclic), and the allocator's accounting (``live_chunks``,
``bytes_in_use``) matches a shadow model.  A final end-to-end test
checks the ``heap.*`` machine counters balance when a program frees
everything it allocates.
"""

from hypothesis import given, strategies as st

from repro.ir import INT32, INT64, VOID, ModuleBuilder, PointerType, verify_module
from repro.machine.heap import (
    ALIGN,
    HEADER_SIZE,
    MAGIC_ALLOCATED,
    MAGIC_FREED,
    MIN_PAYLOAD,
    HeapAllocator,
    HeapError,
)
from repro.machine.memory import Memory
from repro.machine.process import ExitStatus, run_process

import pytest

_U64 = PointerType(VOID)


def build_balanced_module(n: int = 16):
    """A program that frees every heap allocation it makes."""
    mb = ModuleBuilder("balanced")
    mb.declare_external("print_i64", VOID, [INT64])
    _, b = mb.define("main", INT32)
    arr = b.malloc(INT64, b.i64(n))
    with b.for_range(b.i64(n)) as i:
        b.store(b.elem_addr(arr, i), b.mul(i, i))
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(n)) as i:
        b.store(total, b.add(b.load(total), b.load(b.elem_addr(arr, i))))
    b.call("print_i64", [b.load(total)])
    b.free(arr)
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


def walk_free_list(heap):
    """Return [(header_addr, size)] of the free list, asserting integrity:
    every node carries the freed magic, lies inside the allocated region,
    and the chain terminates without revisiting a node."""
    nodes = []
    seen = set()
    cur = heap.free_head
    while cur != 0:
        assert cur not in seen, "free list cycle"
        seen.add(cur)
        assert heap.base <= cur and cur + HEADER_SIZE <= heap.top
        size, magic = heap._read_header(cur)
        assert magic == MAGIC_FREED
        assert 0 < size
        assert cur + HEADER_SIZE + size <= heap.top
        nodes.append((cur, size))
        cur = heap.memory.read_scalar(cur + HEADER_SIZE, _U64)
    return nodes


def check_invariants(heap, live):
    """``live`` is the shadow model: payload address -> payload size."""
    assert heap.live_chunks == len(live)
    assert heap.bytes_in_use == sum(live.values())
    for addr, size in live.items():
        assert heap.is_live_chunk(addr)
        assert heap.payload_size(addr) == size
    free_nodes = walk_free_list(heap)
    # No chunk — live or free, header included — overlaps any other.
    chunks = [(addr - HEADER_SIZE, addr + size) for addr, size in live.items()]
    chunks += [(hdr, hdr + HEADER_SIZE + size) for hdr, size in free_nodes]
    chunks.sort()
    for (_, end), (start, _) in zip(chunks, chunks[1:]):
        assert end <= start, "overlapping chunks"
    if chunks:
        assert chunks[0][0] >= heap.base
        assert chunks[-1][1] <= heap.top


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=0, max_value=256)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=1 << 30)),
    ),
    min_size=1,
    max_size=80,
)


@given(ops=OPS)
def test_random_alloc_free_preserves_invariants(ops):
    heap = HeapAllocator(Memory())
    live = {}
    for kind, val in ops:
        if kind == "malloc":
            addr = heap.malloc(val)
            assert addr % ALIGN == 0
            size = heap.payload_size(addr)
            # Rounded up, never down; a recycled chunk may be larger.
            assert size >= heap.round_request(val) >= max(val, MIN_PAYLOAD)
            live[addr] = size
        elif live:
            victim = sorted(live)[val % len(live)]
            heap.free(victim)
            assert not heap.is_live_chunk(victim)
            del live[victim]
        check_invariants(heap, live)


@given(ops=OPS)
def test_freeing_everything_drains_the_heap(ops):
    heap = HeapAllocator(Memory())
    live = {}
    for kind, val in ops:
        if kind == "malloc":
            addr = heap.malloc(val)
            live[addr] = heap.payload_size(addr)
        elif live:
            victim = sorted(live)[val % len(live)]
            heap.free(victim)
            del live[victim]
    for addr in sorted(live):
        heap.free(addr)
    assert heap.live_chunks == 0
    assert heap.bytes_in_use == 0
    # Everything ever carved out of the bump region is now on the free list.
    free_bytes = sum(HEADER_SIZE + size for _, size in walk_free_list(heap))
    assert free_bytes == heap.top - heap.base


@given(sizes=st.lists(st.integers(0, 256), min_size=1, max_size=20))
def test_recycled_chunks_come_from_the_free_list(sizes):
    """LIFO first-fit: freeing then reallocating the same size reuses the
    freed chunk instead of growing the bump pointer."""
    heap = HeapAllocator(Memory())
    addrs = [heap.malloc(s) for s in sizes]
    top = heap.top
    for addr in reversed(addrs):
        heap.free(addr)
    again = [heap.malloc(s) for s in sizes]
    assert heap.top == top, "reallocation should not grow the heap"
    assert sorted(again) == sorted(addrs)
    check_invariants(heap, {a: heap.payload_size(a) for a in again})


def test_double_free_is_detected():
    heap = HeapAllocator(Memory())
    addr = heap.malloc(40)
    heap.free(addr)
    with pytest.raises(HeapError, match="double free"):
        heap.free(addr)


def test_misaligned_and_foreign_frees_are_detected():
    heap = HeapAllocator(Memory())
    addr = heap.malloc(40)
    with pytest.raises(HeapError, match="misaligned"):
        heap.free(addr + 1)
    with pytest.raises(HeapError, match="non-heap"):
        heap.free(0x10)  # null page / out of segment
    heap.free(addr)  # the original pointer is still freeable


def test_free_null_is_a_noop():
    heap = HeapAllocator(Memory())
    heap.free(0)
    assert heap.live_chunks == 0
    assert heap.bytes_in_use == 0


def test_heap_counters_balance_when_everything_is_freed():
    """End-to-end: a program that frees every allocation must report
    balanced ``heap.*`` byte and operation counters."""
    result = run_process(build_balanced_module(16), counters=True)
    assert result.status is ExitStatus.NORMAL
    c = result.counters
    assert c["heap.alloc"] >= 1
    assert c["heap.alloc"] == c["heap.free"]
    assert c["heap.alloc_bytes"] == c["heap.free_bytes"] > 0
