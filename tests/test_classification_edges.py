"""ExitStatus classification edges (§3.6, Table 3.2).

Two boundaries that are easy to get off-by-one and that the trace replay
inherits verbatim:

* a run that finishes using *exactly* its cycle budget is NORMAL — the
  interpreter raises ``Timeout`` only when ``cycles > max_cycles`` (the
  harness budget is ``golden_cycles * timeout_factor``, so a variant at
  exactly the factor is within budget);
* ``app_error`` is APP_ERROR (natural detection) even when the run already
  produced byte-exact golden output — detection beats "correct output".
"""

from __future__ import annotations

from repro.eval.experiment import ExperimentRecord
from repro.ir import INT32, INT64, VOID, ModuleBuilder, verify_module
from repro.machine.process import ExitStatus, run_process
from tests.conftest import build_sum_module


def _sum_module_then_app_error(code: int):
    """Same program (and output) as ``build_sum_module``, then app_error."""
    mb = ModuleBuilder("sum")
    mb.declare_external("print_i64", VOID, [INT64])
    mb.declare_external("app_error", VOID, [INT32])
    fn, b = mb.define("main", INT32)
    n = 10
    arr = b.malloc(INT64, b.i64(n))
    with b.for_range(b.i64(n)) as i:
        b.store(b.elem_addr(arr, i), b.mul(i, i))
    total = b.alloca(INT64)
    b.store(total, b.i64(0))
    with b.for_range(b.i64(n)) as i:
        b.store(total, b.add(b.load(total), b.load(b.elem_addr(arr, i))))
    b.call("print_i64", [b.load(total)])
    b.free(arr)
    b.call("app_error", [b.i32(code)])
    b.ret(b.i32(0))
    verify_module(mb.module)
    return mb.module


class TestTimeoutBoundary:
    def test_exactly_at_budget_is_normal(self):
        golden = run_process(build_sum_module())
        assert golden.status is ExitStatus.NORMAL
        exact = run_process(build_sum_module(), max_cycles=golden.cycles)
        assert exact.status is ExitStatus.NORMAL
        assert exact.cycles == golden.cycles

    def test_one_cycle_short_times_out(self):
        golden = run_process(build_sum_module())
        short = run_process(build_sum_module(), max_cycles=golden.cycles - 1)
        assert short.status is ExitStatus.TIMEOUT
        assert short.exit_code == 0

    def test_boundary_identical_on_instrumented_path(self):
        # The observability twin loop must place the timeout check at the
        # same instruction, or traced runs would classify differently.
        golden = run_process(build_sum_module())
        exact = run_process(
            build_sum_module(), max_cycles=golden.cycles, counters=True
        )
        short = run_process(
            build_sum_module(), max_cycles=golden.cycles - 1, counters=True
        )
        assert exact.status is ExitStatus.NORMAL
        assert short.status is ExitStatus.TIMEOUT

    def test_timeout_record_is_neither_co_nor_detected(self):
        golden = run_process(build_sum_module())
        short = run_process(build_sum_module(), max_cycles=golden.cycles - 1)
        rec = ExperimentRecord(
            workload="sum",
            variant="stdapp",
            site=None,
            run=0,
            result=short,
            golden_output=golden.output_text,
        )
        assert not rec.co and not rec.ndet and not rec.ddet
        assert not rec.covered
        assert rec.detection_time is None


class TestAppErrorWithCorrectOutput:
    def test_app_error_after_golden_output_is_natural_detection(self):
        golden = run_process(build_sum_module())
        erred = run_process(_sum_module_then_app_error(9))
        # The program produced byte-exact golden output before detecting.
        assert erred.output_text == golden.output_text
        assert erred.status is ExitStatus.APP_ERROR
        assert erred.exit_code == 9
        rec = ExperimentRecord(
            workload="sum",
            variant="stdapp",
            site=None,
            run=0,
            result=erred,
            golden_output=golden.output_text,
        )
        # Detection wins: the run is Ndet, not CO, despite matching output.
        assert rec.ndet and not rec.co and not rec.ddet
        assert rec.covered
        assert rec.detection_time == erred.cycles

    def test_nonzero_exit_code_is_natural_detection(self):
        golden = run_process(build_sum_module())
        mb = ModuleBuilder("exit1")
        fn, b = mb.define("main", INT32)
        b.ret(b.i32(1))
        verify_module(mb.module)
        result = run_process(mb.module)
        assert result.status is ExitStatus.NORMAL and result.exit_code == 1
        rec = ExperimentRecord(
            workload="sum",
            variant="stdapp",
            site=None,
            run=0,
            result=result,
            golden_output=golden.output_text,
        )
        assert rec.ndet and not rec.co

    def test_silent_wrong_output_is_uncovered(self):
        golden = run_process(build_sum_module(10))
        other = run_process(build_sum_module(9))  # clean exit, wrong sum
        rec = ExperimentRecord(
            workload="sum",
            variant="stdapp",
            site=None,
            run=0,
            result=other,
            golden_output=golden.output_text,
        )
        assert not rec.co and not rec.ndet and not rec.ddet
        assert not rec.covered
